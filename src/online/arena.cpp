#include "online/arena.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "stats/rng.hpp"

namespace ssdfail::online {
namespace {

/// Replay-stable per-row sampling decision, same recipe as the dataset
/// builder's row subsampling (stats::hash_fold chain -> one uniform).
bool keeps_row(double prob, std::uint64_t seed, std::uint64_t uid,
               std::int32_t day) noexcept {
  if (prob >= 1.0) return true;
  if (prob <= 0.0) return false;
  stats::Rng rng(stats::hash_fold(
      stats::hash_fold(stats::hash_fold(stats::kHashKeysInit, seed), uid),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(day))));
  return rng.uniform() < prob;
}

double auc_of(const std::deque<float>& scores, const std::deque<float>& labels) {
  if (scores.size() != labels.size()) return 0.0;
  const std::vector<float> s(scores.begin(), scores.end());
  const std::vector<float> l(labels.begin(), labels.end());
  const double auc = ml::roc_auc(s, l);
  return std::isnan(auc) ? 0.0 : auc;
}

}  // namespace

ModelArena::ModelArena(ArenaConfig config, obs::MetricsRegistry* registry)
    : config_(config) {
  if (registry == nullptr) return;
  shadow_scored_total_ = &registry->counter(
      "online_shadow_scored_total", {}, "Rows shadow-scored by challengers");
  matured_total_metric_ = &registry->counter(
      "online_matured_total", {}, "Scored rows whose labels matured");
  evaluations_total_ = &registry->counter(
      "online_evaluations_total", {}, "Promotion-gate evaluations run");
  promotions_total_ = &registry->counter(
      "online_promotions_total", {}, "Challenger promotions executed");
  pending_gauge_ = &registry->gauge(
      "online_pending_rows", {}, "Scored rows awaiting label maturation");
  champion_auc_gauge_ = &registry->gauge(
      "online_window_auc", {{"role", "champion"}},
      "Recent matured-window ROC AUC per model role");
  challenger_auc_gauge_ = &registry->gauge(
      "online_window_auc", {{"role", "challenger"}},
      "Recent matured-window ROC AUC per model role");
  calibration_gap_gauge_ = &registry->gauge(
      "online_calibration_gap", {},
      "Champion mean predicted probability minus observed swap rate, matured window");
}

void ModelArena::set_challenger(std::string tag,
                                std::shared_ptr<const ml::Classifier> model) {
  auto serving = ml::make_serving_model(std::move(model));
  std::scoped_lock lock(mutex_);
  std::size_t slot = challengers_.size();
  for (std::size_t i = 0; i < challengers_.size(); ++i)
    if (challengers_[i].tag == tag) slot = i;
  if (slot == challengers_.size()) {
    challengers_.push_back({std::move(tag), std::move(serving)});
    window_challengers_.emplace_back();
  } else {
    challengers_[slot].model = std::move(serving);
  }
  // The gate is only fair on rows EVERY model scored: entering (or
  // replacing) a challenger restarts the comparison — matured window and
  // pending rows scored before this challenger existed are dropped.
  window_labels_.clear();
  window_champion_.clear();
  for (auto& col : window_challengers_) col.clear();
  for (auto& entry : drives_) {
    pending_count_ -= entry.second.pending.size();
    entry.second.pending.clear();
  }
}

void ModelArena::clear_challengers() {
  std::scoped_lock lock(mutex_);
  challengers_.clear();
  window_challengers_.clear();
  for (auto& entry : drives_)
    for (PendingRow& row : entry.second.pending) row.challenger_scores.clear();
}

std::size_t ModelArena::challenger_count() const {
  std::scoped_lock lock(mutex_);
  return challengers_.size();
}

void ModelArena::observe_batch(const ml::Matrix& features,
                               std::span<const trace::DailyRecord> records,
                               std::span<const daemon::DriveAssessment> assessments) {
  if (features.rows() == 0) return;
  // Shadow-score OUTSIDE the lock: predict_proba on the compiled engine is
  // the only nontrivial work here and it is read-only.  A challenger swap
  // racing this batch merely attributes one batch to the old model; its
  // columns reset at swap anyway.
  std::vector<Challenger> models;
  {
    std::scoped_lock lock(mutex_);
    models = challengers_;
  }
  std::vector<std::vector<float>> shadow(models.size());
  for (std::size_t m = 0; m < models.size(); ++m)
    shadow[m] = models[m].model->predict_proba(features);
  if (shadow_scored_total_ != nullptr && !models.empty())
    shadow_scored_total_->inc(features.rows() * models.size());

  std::scoped_lock lock(mutex_);
  const std::size_t n_challengers = challengers_.size();
  for (std::size_t i = 0; i < assessments.size(); ++i) {
    const daemon::DriveAssessment& a = assessments[i];
    DriveLog& log = drives_[a.uid];
    if (a.dead && !log.failure_day) log.failure_day = a.day;
    watermark_ = std::max(watermark_, a.day);
    if (!a.scored) continue;  // degraded-mode rows carry no champion score
    if (!keeps_row(config_.sample_prob, config_.seed, a.uid, a.day)) continue;
    PendingRow row;
    row.day = a.day;
    row.champion_score = a.score;
    row.challenger_scores.assign(n_challengers, 0.0f);
    // The snapshot raced set_challenger only if sizes differ; those rows
    // keep zeros in the new column, same as a fresh challenger's reset.
    for (std::size_t m = 0; m < std::min(models.size(), n_challengers); ++m)
      row.challenger_scores[m] = shadow[m][i];
    log.pending.push_back(std::move(row));
    ++pending_count_;
  }
  (void)records;
  mature_locked();
  if (pending_gauge_ != nullptr)
    pending_gauge_->set(static_cast<double>(pending_count_));
}

void ModelArena::observe_retires(std::span<const std::uint64_t> uids) {
  std::scoped_lock lock(mutex_);
  for (const std::uint64_t uid : uids) {
    DriveLog& log = drives_[uid];
    if (!log.failure_day) log.failure_day = watermark_;
  }
  mature_locked();
}

void ModelArena::mature_locked() {
  for (auto it = drives_.begin(); it != drives_.end();) {
    DriveLog& log = it->second;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < log.pending.size(); ++i) {
      PendingRow& row = log.pending[i];
      const bool failed_in_window =
          log.failure_day && *log.failure_day - row.day <= config_.lookahead_days &&
          *log.failure_day >= row.day;
      const bool matured =
          failed_in_window ||
          watermark_ >= row.day + config_.lookahead_days;
      if (!matured) {
        // Guard the self-move: compacting in place, the write slot can be
        // the row itself, and a self-moved vector's contents are gone.
        if (kept != i) log.pending[kept] = std::move(row);
        ++kept;
        continue;
      }
      push_matured_locked(row, failed_in_window);
      --pending_count_;
    }
    log.pending.resize(kept);
    // A failed drive with no pending rows never produces more: drop it.
    if (log.pending.empty() && log.failure_day) {
      it = drives_.erase(it);
    } else {
      ++it;
    }
  }
}

void ModelArena::push_matured_locked(const PendingRow& row, bool positive) {
  window_labels_.push_back(positive ? 1.0f : 0.0f);
  window_champion_.push_back(row.champion_score);
  for (std::size_t m = 0; m < window_challengers_.size(); ++m)
    window_challengers_[m].push_back(
        m < row.challenger_scores.size() ? row.challenger_scores[m] : 0.0f);
  while (window_labels_.size() > config_.window_capacity) {
    window_labels_.pop_front();
    window_champion_.pop_front();
    for (auto& col : window_challengers_) col.pop_front();
  }
  ++matured_total_;
  if (positive) ++matured_positives_total_;
  if (cooldown_left_ > 0) --cooldown_left_;
  if (matured_total_metric_ != nullptr) matured_total_metric_->inc();
}

double ModelArena::champion_window_auc_locked() const {
  return auc_of(window_champion_, window_labels_);
}

ArenaVerdict ModelArena::evaluate() {
  std::scoped_lock lock(mutex_);
  if (evaluations_total_ != nullptr) evaluations_total_->inc();

  ArenaVerdict verdict;
  verdict.watermark_day = watermark_;
  verdict.matured_rows = window_labels_.size();
  std::size_t positives = 0;
  for (const float l : window_labels_) positives += l > 0.5f ? 1 : 0;
  verdict.matured_positives = positives;
  verdict.champion_auc = champion_window_auc_locked();

  double mean_score = 0.0;
  for (const float s : window_champion_) mean_score += s;
  if (!window_champion_.empty()) mean_score /= static_cast<double>(window_champion_.size());
  const double observed_rate =
      window_labels_.empty()
          ? 0.0
          : static_cast<double>(positives) / static_cast<double>(window_labels_.size());
  if (calibration_gap_gauge_ != nullptr)
    calibration_gap_gauge_->set(mean_score - observed_rate);
  if (champion_auc_gauge_ != nullptr)
    champion_auc_gauge_->set(verdict.champion_auc);

  double best_auc = -1.0;
  std::size_t best = challengers_.size();
  for (std::size_t m = 0; m < challengers_.size(); ++m) {
    const double auc = auc_of(window_challengers_[m], window_labels_);
    if (auc > best_auc) {
      best_auc = auc;
      best = m;
    }
  }
  if (best < challengers_.size()) {
    verdict.challenger = challengers_[best].tag;
    verdict.challenger_auc = best_auc;
  }
  if (challenger_auc_gauge_ != nullptr)
    challenger_auc_gauge_->set(best < challengers_.size() ? best_auc : 0.0);

  verdict.enough_data = verdict.matured_rows >= config_.min_samples &&
                        verdict.matured_positives >= config_.min_positives &&
                        cooldown_left_ == 0;
  if (challengers_.empty()) {
    verdict.reason = "no challenger installed";
  } else if (!verdict.enough_data) {
    verdict.reason = cooldown_left_ > 0 ? "promotion cooldown active"
                                        : "matured window below minimums";
  } else if (verdict.challenger_auc >= verdict.champion_auc + config_.promote_margin) {
    verdict.promote = true;
    verdict.reason = "challenger beats champion by margin";
  } else {
    verdict.reason = "challenger within margin of champion";
  }
  return verdict;
}

void ModelArena::promote(const ArenaVerdict& verdict) {
  std::scoped_lock lock(mutex_);
  std::size_t slot = challengers_.size();
  for (std::size_t i = 0; i < challengers_.size(); ++i)
    if (challengers_[i].tag == verdict.challenger) slot = i;
  if (slot == challengers_.size()) return;  // challenger vanished; no-op
  challengers_.erase(challengers_.begin() + static_cast<std::ptrdiff_t>(slot));
  window_challengers_.erase(window_challengers_.begin() +
                            static_cast<std::ptrdiff_t>(slot));
  // Hysteresis: the new champion starts with a clean slate — matured
  // window and every pending score reset, so demotion requires a full
  // fresh window scored by the new champion itself.
  window_labels_.clear();
  window_champion_.clear();
  for (auto& col : window_challengers_) col.clear();
  for (auto& entry : drives_) {
    pending_count_ -= entry.second.pending.size();
    entry.second.pending.clear();
  }
  cooldown_left_ = config_.cooldown_matured;
  promotions_.push_back({verdict.challenger, verdict.champion_auc,
                         verdict.challenger_auc, verdict.matured_rows,
                         verdict.watermark_day});
  if (promotions_total_ != nullptr) promotions_total_->inc();
  if (pending_gauge_ != nullptr)
    pending_gauge_->set(static_cast<double>(pending_count_));
}

std::size_t ModelArena::matured_rows() const {
  std::scoped_lock lock(mutex_);
  return window_labels_.size();
}

std::size_t ModelArena::pending_rows() const {
  std::scoped_lock lock(mutex_);
  return pending_count_;
}

std::int32_t ModelArena::watermark_day() const {
  std::scoped_lock lock(mutex_);
  return watermark_;
}

ModelArena::WindowAuc ModelArena::window_auc() const {
  std::scoped_lock lock(mutex_);
  WindowAuc out;
  out.champion = champion_window_auc_locked();
  out.challengers.reserve(window_challengers_.size());
  for (const auto& col : window_challengers_)
    out.challengers.push_back(auc_of(col, window_labels_));
  return out;
}

}  // namespace ssdfail::online
