#include "online/learner.hpp"

#include <exception>
#include <utility>

#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "obs/metrics.hpp"
#include "store/sharded.hpp"

namespace ssdfail::online {

OnlineLearner::OnlineLearner(daemon::TelemetryDaemon* daemon, OnlineConfig config)
    : daemon_(daemon),
      config_(std::move(config)),
      drift_(config_.drift, config_.registry != nullptr ? config_.registry
                                                        : &obs::MetricsRegistry::global()),
      arena_(config_.arena, config_.registry != nullptr ? config_.registry
                                                        : &obs::MetricsRegistry::global()),
      retrainer_([&] {
        RetrainerConfig rc = config_.retrainer;
        rc.store_dir = config_.store_dir;
        return rc;
      }()) {
  obs::MetricsRegistry& registry =
      config_.registry != nullptr ? *config_.registry : obs::MetricsRegistry::global();
  steps_metric_ = &registry.counter("online_steps_total", {},
                                    "Online control-loop steps executed");
  retrains_metric_ = &registry.counter("online_retrains_total", {},
                                       "Challenger models retrained");
  promotion_failures_metric_ =
      &registry.counter("online_promotion_failures_total", {},
                        "Promotions aborted by persist/verify failure");
  last_promotion_day_metric_ = &registry.gauge(
      "online_last_promotion_day", {}, "Stream day of the latest promotion");
  shadow_dropped_metric_ =
      &registry.counter("online_shadow_dropped_total", {},
                        "Rows dropped because the shadow queue was full");
  shadow_thread_ = std::thread([this] { shadow_loop(); });
}

OnlineLearner::~OnlineLearner() {
  stop();
  {
    std::scoped_lock lock(shadow_mutex_);
    shadow_stop_ = true;
  }
  shadow_cv_.notify_all();
  if (shadow_thread_.joinable()) shadow_thread_.join();
}

void OnlineLearner::on_batch(const ml::Matrix& features,
                             std::span<const trace::DailyRecord> records,
                             std::span<const daemon::DriveAssessment> assessments) {
  ShadowWork work;
  work.features = features;
  work.records.assign(records.begin(), records.end());
  work.assessments.assign(assessments.begin(), assessments.end());
  enqueue_shadow(std::move(work));
}

void OnlineLearner::on_retired(std::span<const std::uint64_t> uids) {
  ShadowWork work;
  work.retired.assign(uids.begin(), uids.end());
  if (work.retired.empty()) return;
  enqueue_shadow(std::move(work));
}

void OnlineLearner::enqueue_shadow(ShadowWork work) {
  {
    std::scoped_lock lock(shadow_mutex_);
    if (shadow_queue_.size() >= config_.shadow_queue_batches) {
      // Never stall an appender: shed the whole batch and account for it.
      shadow_dropped_metric_->inc(
          work.retired.empty() ? work.records.size() : work.retired.size());
      return;
    }
    shadow_queue_.push_back(std::move(work));
  }
  shadow_cv_.notify_one();
}

void OnlineLearner::shadow_loop() {
  std::unique_lock lock(shadow_mutex_);
  for (;;) {
    shadow_cv_.wait(lock, [this] { return shadow_stop_ || !shadow_queue_.empty(); });
    if (shadow_queue_.empty()) return;  // stop requested and fully drained
    ShadowWork work = std::move(shadow_queue_.front());
    shadow_queue_.pop_front();
    shadow_busy_ = true;
    lock.unlock();
    if (!work.retired.empty()) {
      arena_.observe_retires(work.retired);
    } else {
      for (const trace::DailyRecord& rec : work.records) {
        drift_.observe(rec);
        if (rec.dead) drift_.observe_swap_day(rec.day);
      }
      arena_.observe_batch(work.features, work.records, work.assessments);
    }
    lock.lock();
    shadow_busy_ = false;
    if (shadow_queue_.empty()) shadow_idle_cv_.notify_all();
  }
}

void OnlineLearner::drain_shadow() {
  std::unique_lock lock(shadow_mutex_);
  shadow_idle_cv_.wait(lock,
                       [this] { return shadow_queue_.empty() && !shadow_busy_; });
}

void OnlineLearner::set_drift_reference(FeatureSketches reference) {
  drift_.set_reference(std::move(reference));
}

bool OnlineLearner::set_drift_reference_from_store() {
  try {
    const auto view = store::ShardedFleetView::open(config_.store_dir);
    drift_.set_reference(sketch_fleet(view));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

StepReport OnlineLearner::step() {
  std::scoped_lock step_lock(step_mutex_);
  // Judge everything the daemon handed over before this step began.
  drain_shadow();
  StepReport report;
  steps_.fetch_add(1);
  steps_metric_->inc();

  // 1. Fold sealed WAL segments into the v3 store so retraining sees
  //    everything the daemon has durably ingested.
  if (!config_.wal_dir.empty()) {
    try {
      report.compaction =
          daemon::compact_sealed_wals(config_.wal_dir, config_.store_dir);
    } catch (const std::exception&) {
      // I/O failure writing the shard: skip this round, the sealed files
      // are still there for the next one.
    }
  }

  // 2. Drift.  Bootstrap the reference from the first compacted history if
  //    none was installed — "what the fleet looked like when the champion
  //    started serving" is the best available proxy for its training
  //    distribution.
  if (!drift_.has_reference() && report.compaction.shards_written > 0)
    (void)set_drift_reference_from_store();
  report.drift = drift_.evaluate();
  // Tumbling windows: once a window was big enough to judge, archive it
  // and start fresh — otherwise early history dilutes later drift and the
  // detector goes blind to gradual shifts.  The archived window is what a
  // promotion adopts as the new reference (it is the distribution the
  // challenger was judged against).
  if (report.drift.window_rows >= config_.drift.min_window_rows) {
    last_window_ = drift_.window_snapshot();
    drift_.reset_window();
  }

  // 3. Retrain at most one pending challenger per drift episode.
  const bool want_retrain =
      (report.drift.alert || !config_.retrain_on_alert_only) &&
      arena_.challenger_count() == 0;
  if (want_retrain) {
    const std::int32_t now_day = arena_.watermark_day();
    if (std::optional<RetrainResult> result = retrainer_.retrain(now_day)) {
      auto gb = std::static_pointer_cast<const ml::GradientBoosting>(result->model);
      const std::string tag = "retrain-d" + std::to_string(result->window_end);
      {
        std::scoped_lock lock(models_mutex_);
        challenger_models_.emplace_back(tag, gb);
      }
      arena_.set_challenger(tag, result->model);
      retrains_metric_->inc();
      report.retrained = true;
      report.train_rows = result->rows;
      report.train_positives = result->positives;
      report.challenger = tag;
    }
  }

  // 4. Promotion gate.
  report.verdict = arena_.evaluate();
  if (report.verdict.promote) report.promoted = execute_promotion(report.verdict);
  return report;
}

bool OnlineLearner::execute_promotion(const ArenaVerdict& verdict) {
  std::shared_ptr<const ml::GradientBoosting> model;
  {
    std::scoped_lock lock(models_mutex_);
    for (const auto& [tag, gb] : challenger_models_)
      if (tag == verdict.challenger) model = gb;
  }
  if (model == nullptr) return false;

  std::shared_ptr<const ml::Classifier> serving;
  if (!config_.model_path.empty()) {
    // Persist first (write-temp + rename: SIGKILL here leaves the previous
    // champion file intact), then serve what was actually persisted — the
    // reload round-trips the bytes and recompiles the FlatForest engine,
    // so a corrupt write can never be hot-swapped in.
    try {
      ml::save_model_file(config_.model_path, *model);
      serving = ml::load_serving_classifier_file(config_.model_path);
    } catch (const std::exception&) {
      promotion_failures_metric_->inc();
      return false;
    }
  } else {
    serving = ml::make_serving_model(model);
  }

  if (daemon_ != nullptr) daemon_->set_model(serving);
  arena_.promote(verdict);
  {
    std::scoped_lock lock(models_mutex_);
    std::erase_if(challenger_models_,
                  [&](const auto& entry) { return entry.first == verdict.challenger; });
  }
  // The promoted model was trained on the drifted fleet: the drifted
  // window IS its reference distribution now.
  if (last_window_.rows > 0) {
    drift_.set_reference(last_window_);
    drift_.reset_window();
  } else {
    drift_.adopt_window_as_reference();
  }
  last_promotion_day_metric_->set(static_cast<double>(verdict.watermark_day));
  return true;
}

void OnlineLearner::start() {
  if (running_.exchange(true)) return;
  {
    std::scoped_lock lock(wake_mutex_);
    stop_requested_ = false;
  }
  step_thread_ = std::thread([this] {
    std::unique_lock lock(wake_mutex_);
    while (!stop_requested_) {
      if (wake_cv_.wait_for(lock, config_.step_interval,
                            [this] { return stop_requested_; }))
        break;
      lock.unlock();
      (void)step();
      lock.lock();
    }
  });
}

void OnlineLearner::stop() {
  if (!running_.exchange(false)) return;
  {
    std::scoped_lock lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (step_thread_.joinable()) step_thread_.join();
}

}  // namespace ssdfail::online
