#pragma once

// Champion/challenger shadow evaluation (the promotion gate of the online
// learning loop).
//
// Every scored daemon batch is shadow-scored by each challenger at near-
// zero marginal cost: the feature matrix is already built and challengers
// are FlatForest-compiled (ml::make_serving_model), so a challenger adds
// one branchless block scan per batch (bench_online_shadow pins the
// overhead at <= 10% for one challenger).  The champion's scores arrive
// for free — they are the daemon's own assessments.
//
// Delayed labels: a scored row (uid, day) matures once the per-drive
// stream reaches day + lookahead (the observation-day watermark — never
// the wall clock, so tests and replay are deterministic).  Its label is
// positive iff the drive's failure signal (dead-flagged record, or an
// explicit retire) lands within the lookahead window.  Matured rows feed
// a bounded recent-window ring per model; ml::roc_auc over that window is
// the promotion currency, exactly the paper's evaluation statistic.
//
// Promotion gate: challenger AUC >= champion AUC + margin, over at least
// min_samples matured rows including min_positives positives.  Hysteresis:
// promote() clears the matured window, so a freshly promoted
// champion cannot be demoted until a full fresh window accumulates under
// its own scores; a cooldown of matured rows after every promotion
// suppresses flapping beyond that.  Every promotion (and every blocked
// evaluation) lands in an audit trail.
//
// Thread safety: observe_batch may run on every appender thread
// concurrently; evaluate/promote run on the learner's control thread.  One
// mutex guards the label bookkeeping; challenger scoring itself runs
// OUTSIDE the lock (it is the expensive part and is read-only).

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "daemon/daemon.hpp"
#include "ml/classifier.hpp"
#include "obs/metrics.hpp"

namespace ssdfail::online {

struct ArenaConfig {
  /// Label maturation horizon: a row labels positive iff the drive's
  /// failure signal lands within this many days (inclusive, matching
  /// DatasetBuildOptions::lookahead_days).
  int lookahead_days = 7;
  /// Matured rows required before any promotion verdict.
  std::size_t min_samples = 256;
  /// Matured positives required before any promotion verdict (AUC over a
  /// window with 1-2 positives is noise).
  std::size_t min_positives = 8;
  /// Challenger must beat the champion's recent-window AUC by this much.
  double promote_margin = 0.01;
  /// Matured-row ring capacity (the "recent window").
  std::size_t window_capacity = 8192;
  /// Additional matured rows required after a promotion before the next
  /// verdict (flap damping on top of the window reset).
  std::size_t cooldown_matured = 0;
  /// Deterministic per-row sampling probability for arena bookkeeping
  /// (1.0 keeps every scored row; lower bounds memory on huge fleets).
  /// Keyed by hash(seed, uid, day) — replay-stable.
  double sample_prob = 1.0;
  std::uint64_t seed = 17;
};

/// One promotion-gate decision (kept in the audit trail when it promotes
/// or is blocked by the margin; pure not-enough-data verdicts are not
/// recorded).
struct ArenaVerdict {
  bool promote = false;
  bool enough_data = false;
  double champion_auc = 0.0;
  double challenger_auc = 0.0;
  std::size_t matured_rows = 0;
  std::size_t matured_positives = 0;
  std::int32_t watermark_day = 0;  ///< stream day at evaluation
  std::string challenger;          ///< tag of the best challenger
  std::string reason;              ///< human-readable gate outcome
};

/// Audit-trail entry for an executed promotion.
struct PromotionEvent {
  std::string challenger;
  double champion_auc = 0.0;
  double challenger_auc = 0.0;
  std::size_t matured_rows = 0;
  std::int32_t watermark_day = 0;
};

class ModelArena {
 public:
  ModelArena(ArenaConfig config, obs::MetricsRegistry* registry);

  /// Install (or replace) a challenger.  `model` is wrapped through
  /// ml::make_serving_model, so tree ensembles shadow-score through the
  /// compiled FlatForest engine.  Installing restarts the comparison:
  /// matured window and pending rows are dropped, because the gate is only
  /// fair on rows every competing model actually scored.
  void set_challenger(std::string tag, std::shared_ptr<const ml::Classifier> model);
  void clear_challengers();
  [[nodiscard]] std::size_t challenger_count() const;

  /// Fold one scored daemon batch (appender threads; see daemon::
  /// BatchObserver).  Shadow-scores all challengers outside the lock.
  void observe_batch(const ml::Matrix& features,
                     std::span<const trace::DailyRecord> records,
                     std::span<const daemon::DriveAssessment> assessments);

  /// Censoring signal: explicitly retired drives count as failure at the
  /// retire point (their pending rows label against the watermark).
  void observe_retires(std::span<const std::uint64_t> uids);

  /// Run the promotion gate over the matured window.  Exports online_*
  /// metrics.  Does not mutate roles — the caller promotes via promote()
  /// after persisting the new model.
  [[nodiscard]] ArenaVerdict evaluate();

  /// The named challenger becomes champion bookkeeping-wise: the matured
  /// window and every pending score reset (fresh start under the new
  /// champion), other challengers are kept, and the event is recorded.
  void promote(const ArenaVerdict& verdict);

  [[nodiscard]] const std::vector<PromotionEvent>& promotions() const {
    return promotions_;
  }
  [[nodiscard]] std::size_t matured_rows() const;
  [[nodiscard]] std::size_t pending_rows() const;
  [[nodiscard]] std::int32_t watermark_day() const;

  /// Matured-window AUC per role without gate side effects (tests, CLI).
  struct WindowAuc {
    double champion = 0.0;
    std::vector<double> challengers;
  };
  [[nodiscard]] WindowAuc window_auc() const;

 private:
  struct Challenger {
    std::string tag;
    std::shared_ptr<const ml::Classifier> model;
  };
  struct PendingRow {
    std::int32_t day = 0;
    float champion_score = 0.0f;
    std::vector<float> challenger_scores;
  };
  struct DriveLog {
    std::vector<PendingRow> pending;
    std::optional<std::int32_t> failure_day;
  };

  void mature_locked();
  void push_matured_locked(const PendingRow& row, bool positive);
  [[nodiscard]] double champion_window_auc_locked() const;

  ArenaConfig config_;
  mutable std::mutex mutex_;
  std::vector<Challenger> challengers_;
  std::unordered_map<std::uint64_t, DriveLog> drives_;
  std::int32_t watermark_ = 0;
  std::size_t pending_count_ = 0;
  std::size_t cooldown_left_ = 0;

  // Matured recent window (deques bounded by window_capacity; one score
  // column per model role).
  std::deque<float> window_labels_;
  std::deque<float> window_champion_;
  std::vector<std::deque<float>> window_challengers_;
  std::uint64_t matured_total_ = 0;
  std::uint64_t matured_positives_total_ = 0;

  std::vector<PromotionEvent> promotions_;

  obs::Counter* shadow_scored_total_ = nullptr;
  obs::Counter* matured_total_metric_ = nullptr;
  obs::Counter* evaluations_total_ = nullptr;
  obs::Counter* promotions_total_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* champion_auc_gauge_ = nullptr;
  obs::Gauge* challenger_auc_gauge_ = nullptr;
  obs::Gauge* calibration_gap_gauge_ = nullptr;
};

}  // namespace ssdfail::online
