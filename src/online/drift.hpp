#pragma once

// Streaming distribution-drift detection for the online-learning loop
// (ROADMAP "Online learning, drift detection, champion/challenger").
//
// The paper trains once on a frozen trace; a production fleet drifts under
// the model (firmware updates, new drive batches, aging mix — Han et al.,
// PAPERS.md, show preprocessing/label shift dominates predictor accuracy
// over time).  This module watches the INPUT side of the model:
//
//   - Per-feature marginal sketches: fixed-bin histograms over the 19
//     SSDF2 zone columns (store::ZoneColumn — the 8 record fields, the 10
//     error-type counters, and the swap-day column).  Counters span many
//     orders of magnitude, so bins are log2-spaced (bin 0 holds <= 0, bin
//     k holds [2^(k-1), 2^k)); days use the same spacing, which is fine —
//     drift statistics only need a fixed, order-preserving partition
//     agreed between reference and window.
//   - Two binned two-sample statistics per column, computed reference vs
//     current window: PSI (population stability index, the standard
//     scorecard-monitoring statistic; > 0.25 is conventionally "major
//     shift") and the binned KS distance (max CDF gap, in [0, 1]).
//   - Score-calibration drift: the ModelArena reports each matured label
//     window's mean predicted probability vs observed swap rate; the gap
//     is exported as online_calibration_gap (see arena.hpp).
//
// The detector is fed from the daemon's BatchObserver tap (sanitized
// records only — quarantined rows never reach it) and compared against a
// DriftReference captured from the TRAINING data (sketch_fleet over the
// shards the champion was fitted on, or adopt() of a live window at
// promotion time).  Everything is exported as online_* metric families
// with configurable alert thresholds.
//
// Thread safety: observe() may be called concurrently from every appender
// thread (striped per-thread accumulation is overkill here — a mutex-
// guarded add into 20 small arrays is ~ns against a scoring batch);
// evaluate()/snapshot() take the same mutex.

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/columnar.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::store {
class ShardedFleetView;
}

namespace ssdfail::online {

/// Number of log2-spaced bins per column sketch.  2^30 days / counter
/// units is beyond anything the fleet produces, so the top bin is a true
/// tail bucket.
inline constexpr std::size_t kDriftBins = 32;

/// Fixed-bin marginal histogram of one column.  Plain data: merging and
/// serializing (CLI drift reports) stay trivial.
struct MarginalSketch {
  std::array<std::uint64_t, kDriftBins> bins{};
  std::uint64_t n = 0;

  /// log2 binning: <= 0 -> bin 0, else 1 + floor(log2(v)), capped.
  [[nodiscard]] static std::size_t bin_of(std::int64_t v) noexcept;

  void add(std::int64_t v) noexcept {
    ++bins[bin_of(v)];
    ++n;
  }
  void merge(const MarginalSketch& other) noexcept;
};

/// One sketch per zone column (store::ZoneColumn order).
struct FeatureSketches {
  std::array<MarginalSketch, store::kNumZoneColumns> columns{};
  std::uint64_t rows = 0;  ///< records folded (swap-day adds don't count)

  /// Fold one sanitized daily record (fills every column except kSwapDay).
  void add_record(const trace::DailyRecord& rec) noexcept;
  /// Fold one swap/death day into the kSwapDay sketch.
  void add_swap_day(std::int32_t day) noexcept;
  void merge(const FeatureSketches& other) noexcept;
};

/// Human-readable zone-column name ("reads", "err_uncorrectable", ...).
[[nodiscard]] std::string zone_column_name(store::ZoneColumn column);

/// Sketch a whole columnar file / sharded store — the offline side
/// (training-time reference capture, and the CLI `drift` report).
[[nodiscard]] FeatureSketches sketch_fleet(const store::ColumnarFleetView& view);
[[nodiscard]] FeatureSketches sketch_fleet(const store::ShardedFleetView& view);

/// Binned two-sample statistics for one column.
struct DriftStat {
  double psi = 0.0;  ///< population stability index (>= 0)
  double ks = 0.0;   ///< max binned CDF gap, in [0, 1]
};

/// PSI + KS between a reference and a current sketch.  Empty sketches
/// compare as zero drift (nothing to judge).
[[nodiscard]] DriftStat compare_sketches(const MarginalSketch& ref,
                                         const MarginalSketch& cur) noexcept;

struct DriftConfig {
  /// Alert when any column's PSI reaches this (0.25 is the conventional
  /// "major population shift" threshold).
  double psi_alert = 0.25;
  /// Alert when any column's binned KS distance reaches this.
  double ks_alert = 0.35;
  /// Judge only once the current window holds at least this many records
  /// (tiny windows make PSI scream on noise).
  std::uint64_t min_window_rows = 512;
};

/// Full per-column comparison of reference vs current window.  The
/// aggregates (max_psi/max_ks/alert) cover FEATURE columns only: the clock
/// columns kDay and kSwapDay drift by construction on any live stream, so
/// they appear in `columns` for reporting but never fire the alert.
struct DriftReport {
  std::array<DriftStat, store::kNumZoneColumns> columns{};
  std::uint64_t reference_rows = 0;
  std::uint64_t window_rows = 0;
  double max_psi = 0.0;
  double max_ks = 0.0;
  std::size_t worst_column = 0;  ///< argmax PSI over feature columns
  bool alert = false;            ///< thresholds crossed with enough rows
};

/// Streaming drift detector: reference sketches vs an accumulating
/// current window, with online_* metric export.
class DriftDetector {
 public:
  /// `registry` null disables metric export (offline CLI reports).
  DriftDetector(DriftConfig config, obs::MetricsRegistry* registry);

  /// Install the training-time reference distribution.
  void set_reference(FeatureSketches reference);
  [[nodiscard]] bool has_reference() const;

  /// Fold one sanitized record (appender threads).
  void observe(const trace::DailyRecord& rec);
  /// Fold one swap/death day (appender threads).
  void observe_swap_day(std::int32_t day);

  /// Compare the current window against the reference, export metrics,
  /// and bump online_drift_alerts_total on a newly-firing alert.  Does
  /// NOT clear the window (callers decide the cadence; see reset_window).
  [[nodiscard]] DriftReport evaluate();

  /// Start a fresh window (after retraining/promotion adopted the shift).
  void reset_window();

  /// The current window becomes the new reference (promotion adopted the
  /// drifted distribution) and the window restarts.
  void adopt_window_as_reference();

  [[nodiscard]] FeatureSketches window_snapshot() const;
  [[nodiscard]] std::uint64_t window_rows() const;

 private:
  DriftConfig config_;
  mutable std::mutex mutex_;
  std::optional<FeatureSketches> reference_;
  FeatureSketches window_;
  bool alerting_ = false;  ///< edge-triggering for the alerts counter

  obs::Counter* alerts_total_ = nullptr;
  obs::Gauge* alert_gauge_ = nullptr;
  obs::Gauge* window_rows_gauge_ = nullptr;
  obs::Gauge* max_psi_gauge_ = nullptr;
  obs::Gauge* max_ks_gauge_ = nullptr;
  std::array<obs::Gauge*, store::kNumZoneColumns> psi_gauges_{};
  std::array<obs::Gauge*, store::kNumZoneColumns> ks_gauges_{};
};

/// Offline shard-vs-shard comparison (the CLI `drift` subcommand): every
/// column's PSI/KS between two fleets, no thresholds applied unless given.
[[nodiscard]] DriftReport compare_fleets(const FeatureSketches& reference,
                                         const FeatureSketches& current,
                                         const DriftConfig& config = {});

}  // namespace ssdfail::online
