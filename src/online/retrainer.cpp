#include "online/retrainer.hpp"

#include <exception>
#include <limits>
#include <utility>

#include "store/sharded.hpp"

namespace ssdfail::online {

ml::Dataset Retrainer::build_training_set(const store::ShardedFleetView& view,
                                          std::int32_t now_day) const {
  const std::int32_t mature_end = now_day - config_.lookahead_days;
  const std::optional<std::int32_t> window_begin =
      config_.window_days > 0
          ? std::optional<std::int32_t>(mature_end - config_.window_days + 1)
          : std::nullopt;

  core::DatasetBuildOptions base;
  base.lookahead_days = config_.lookahead_days;
  base.seed = config_.seed;
  base.min_day = window_begin;
  base.max_day = mature_end;

  // Pass 1 — subsampled negative background (positive rows all drop, so
  // the passes partition the single-pass row set exactly).
  core::DatasetBuildOptions negatives = base;
  negatives.negative_keep_prob = config_.negative_keep_prob;
  negatives.positive_keep_prob = 0.0;
  ml::Dataset out = core::build_dataset(view, negatives);

  // Pass 2 — every positive, harvested through swap-day pushdown: a
  // positive row's swap lies at or after the row's day, so bounding the
  // swap day below by the window start loses nothing and lets the zone
  // maps skip all-healthy chunks entirely.  With no window the bound
  // degenerates to "has any swap", which still prunes.
  core::DatasetBuildOptions positives = base;
  positives.negative_keep_prob = 0.0;
  positives.positive_keep_prob = 1.0;
  positives.min_swap_day =
      window_begin.value_or(std::numeric_limits<std::int32_t>::min());
  ml::Dataset pos = core::build_dataset(view, positives);

  if (out.feature_names.empty()) out.feature_names = pos.feature_names;
  out.x.append_rows(pos.x);
  out.y.insert(out.y.end(), pos.y.begin(), pos.y.end());
  out.groups.insert(out.groups.end(), pos.groups.begin(), pos.groups.end());
  out.validate();
  return out;
}

std::optional<RetrainResult> Retrainer::retrain(std::int32_t now_day) const {
  store::ShardedFleetView view;
  try {
    view = store::ShardedFleetView::open(config_.store_dir);
  } catch (const std::exception&) {
    return std::nullopt;  // nothing compacted yet
  }

  ml::Dataset train = build_training_set(view, now_day);
  if (train.size() < config_.min_rows || train.positives() < config_.min_positives)
    return std::nullopt;

  auto model = std::make_shared<ml::GradientBoosting>(config_.model);
  model->fit(train);

  RetrainResult result;
  result.model = std::move(model);
  result.rows = train.size();
  result.positives = train.positives();
  const std::int32_t mature_end = now_day - config_.lookahead_days;
  result.window_end = mature_end;
  result.window_begin = config_.window_days > 0
                            ? mature_end - config_.window_days + 1
                            : std::numeric_limits<std::int32_t>::min();
  result.shards = view.shard_count();
  return result;
}

}  // namespace ssdfail::online
