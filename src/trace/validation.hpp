#pragma once

// Structural validation of imported traces.
//
// Real-world log pipelines produce malformed data: out-of-order rows,
// cumulative counters that go backwards after a controller reset, swap
// events that precede any activity.  validate() reports every violation
// (rather than failing fast) so an operator can triage an import.
//
// The same ViolationKind taxonomy doubles as the online classification
// used by robustness::RecordSanitizer on the serving hot path: offline
// validation *reports*, the sanitizer *repairs or quarantines*.

#include <array>
#include <string>
#include <vector>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {

enum class ViolationKind {
  kNonMonotoneDays,        ///< record days not strictly increasing
  kRecordBeforeDeploy,     ///< a record predates the deploy day
  kDecreasingPeCycles,     ///< cumulative P/E went backwards
  kDecreasingBadBlocks,    ///< cumulative bad blocks went backwards
  kFactoryBadBlocksChanged,///< the factory count is not constant
  kSwapsOutOfOrder,        ///< swap days not strictly increasing
  kSwapBeforeActivity,     ///< a swap precedes every record
  kErasesWithoutWrites,    ///< erase ops reported on a zero-write day
  kImplausibleValue,       ///< saturated counter garbage (e.g. 0xFFFFFFFF)
  kDecreasingClassCounter, ///< a class-specific cumulative channel went backwards
};

inline constexpr std::size_t kNumViolationKinds = 10;
inline constexpr std::array<ViolationKind, kNumViolationKinds> kAllViolationKinds = {
    ViolationKind::kNonMonotoneDays,     ViolationKind::kRecordBeforeDeploy,
    ViolationKind::kDecreasingPeCycles,  ViolationKind::kDecreasingBadBlocks,
    ViolationKind::kFactoryBadBlocksChanged, ViolationKind::kSwapsOutOfOrder,
    ViolationKind::kSwapBeforeActivity,  ViolationKind::kErasesWithoutWrites,
    ViolationKind::kImplausibleValue,    ViolationKind::kDecreasingClassCounter};

[[nodiscard]] std::string_view violation_name(ViolationKind kind) noexcept;

/// Label-safe snake_case identifier for a kind (metric label values, e.g.
/// `sanitizer_quarantined_total{kind="non_monotone_days"}`).
[[nodiscard]] std::string_view violation_slug(ViolationKind kind) noexcept;

/// True if any counter field carries saturated garbage (the all-ones value a
/// wedged controller or a broken collector emits).  Shared by offline
/// validation and the online sanitizer so both classify identically.
/// Derived from kRecordCounterFields — class-specific channels included.
[[nodiscard]] bool implausible_record(const DailyRecord& rec) noexcept;

/// The violation a backwards step in `field` classifies as.  pe_cycles and
/// bad_blocks keep their historical kinds (metric labels are stable);
/// every other cumulative channel maps to kDecreasingClassCounter.
/// Meaningless for non-cumulative fields.
[[nodiscard]] constexpr ViolationKind decreasing_kind(
    const RecordCounterField& field) noexcept {
  if (field.field == &DailyRecord::pe_cycles)
    return ViolationKind::kDecreasingPeCycles;
  if (field.field == &DailyRecord::bad_blocks)
    return ViolationKind::kDecreasingBadBlocks;
  return ViolationKind::kDecreasingClassCounter;
}

struct Violation {
  ViolationKind kind;
  std::uint64_t drive_uid = 0;
  std::int32_t day = 0;      ///< day the violation was detected at
  std::string detail;
};

/// Validate one drive's history; appends violations to `out`.
void validate_history(const DriveHistory& drive, std::vector<Violation>& out);

/// Validate a whole fleet; returns all violations found.
[[nodiscard]] std::vector<Violation> validate_fleet(const FleetTrace& fleet);

}  // namespace ssdfail::trace
