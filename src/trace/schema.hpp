#pragma once

// The drive-log schema of Section 2 of the paper.
//
// Each drive emits at most one DailyRecord per day of operation: workload
// counters, cumulative wear, status flags, bad-block counts, and the counts
// of ten error types.  Swap events (Section 3) live in a separate log.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ssdfail::trace {

/// The three MLC drive models of the study, plus the HDD and NVMe device
/// classes of the heterogeneous-fleet extension (calibrated to Pinciroli
/// et al., "The Life and Death of SSDs and HDDs" — see PAPERS.md).
enum class DriveModel : std::uint8_t {
  MlcA = 0,
  MlcB = 1,
  MlcD = 2,
  Hdd = 3,
  Nvme = 4,
};

inline constexpr std::size_t kNumModels = 5;
inline constexpr std::array<DriveModel, kNumModels> kAllModels = {
    DriveModel::MlcA, DriveModel::MlcB, DriveModel::MlcD, DriveModel::Hdd,
    DriveModel::Nvme};

/// The original MLC study models (the paper's Tables 1-8 universe).  Code
/// reproducing a paper table iterates these; fleet-composition defaults
/// stay MLC-only so every pre-extension artifact is bit-identical.
inline constexpr std::size_t kNumMlcModels = 3;
inline constexpr std::array<DriveModel, kNumMlcModels> kMlcModels = {
    DriveModel::MlcA, DriveModel::MlcB, DriveModel::MlcD};

[[nodiscard]] std::string_view model_name(DriveModel m) noexcept;

/// Coarse hardware class of a drive model.  Each class carries its own
/// hazard shape and its own telemetry channels (the class-specific
/// DailyRecord fields below).
enum class DeviceClass : std::uint8_t { kMlcSsd = 0, kHdd = 1, kNvmeSsd = 2 };

inline constexpr std::size_t kNumDeviceClasses = 3;
inline constexpr std::array<DeviceClass, kNumDeviceClasses> kAllDeviceClasses = {
    DeviceClass::kMlcSsd, DeviceClass::kHdd, DeviceClass::kNvmeSsd};

[[nodiscard]] constexpr DeviceClass device_class(DriveModel m) noexcept {
  switch (m) {
    case DriveModel::Hdd: return DeviceClass::kHdd;
    case DriveModel::Nvme: return DeviceClass::kNvmeSsd;
    default: return DeviceClass::kMlcSsd;
  }
}

[[nodiscard]] std::string_view device_class_name(DeviceClass c) noexcept;

/// Models belonging to one device class, in kAllModels order.
[[nodiscard]] std::vector<DriveModel> models_of_class(DeviceClass c);

/// Bitmask over model ids (1 << model) of the models in class `c` —
/// directly comparable against a store chunk's model_mask.
[[nodiscard]] constexpr std::uint32_t class_model_mask(DeviceClass c) noexcept {
  std::uint32_t mask = 0;
  for (DriveModel m : kAllModels)
    if (device_class(m) == c) mask |= 1u << static_cast<std::uint32_t>(m);
  return mask;
}

/// The ten error types reported by the custom firmware (Section 2).
enum class ErrorType : std::uint8_t {
  kCorrectable = 0,   // bits corrected by internal ECC during reads
  kErase = 1,         // erase operations that failed
  kFinalRead = 2,     // reads that failed even after retries
  kFinalWrite = 3,    // writes that failed even after retries
  kMeta = 4,          // errors reading drive-internal metadata
  kRead = 5,          // reads that errored but succeeded on retry
  kResponse = 6,      // bad responses from the drive
  kTimeout = 7,       // operations that timed out
  kUncorrectable = 8, // uncorrectable ECC errors during reads
  kWrite = 9,         // writes that errored but succeeded on retry
};

inline constexpr std::size_t kNumErrorTypes = 10;
inline constexpr std::array<ErrorType, kNumErrorTypes> kAllErrorTypes = {
    ErrorType::kCorrectable, ErrorType::kErase,     ErrorType::kFinalRead,
    ErrorType::kFinalWrite,  ErrorType::kMeta,      ErrorType::kRead,
    ErrorType::kResponse,    ErrorType::kTimeout,   ErrorType::kUncorrectable,
    ErrorType::kWrite};

[[nodiscard]] std::string_view error_name(ErrorType e) noexcept;

/// Transparent errors may be hidden from the user (correctable, erase,
/// read, write); non-transparent errors may not (final read/write, meta,
/// response, timeout, uncorrectable).  Section 2.
[[nodiscard]] constexpr bool is_transparent(ErrorType e) noexcept {
  switch (e) {
    case ErrorType::kCorrectable:
    case ErrorType::kErase:
    case ErrorType::kRead:
    case ErrorType::kWrite:
      return true;
    default:
      return false;
  }
}

/// One day of drive activity, as reported by the log.
struct DailyRecord {
  std::int32_t day = 0;          ///< absolute day index within the trace window
  std::uint32_t reads = 0;       ///< read operations this day
  std::uint32_t writes = 0;      ///< write operations this day
  std::uint32_t erases = 0;      ///< erase operations this day
  std::uint32_t pe_cycles = 0;   ///< cumulative program/erase cycles
  std::uint32_t bad_blocks = 0;  ///< cumulative non-factory bad blocks
  std::uint16_t factory_bad_blocks = 0;  ///< bad on arrival (constant)
  bool read_only = false;        ///< drive operating in read-only mode
  bool dead = false;             ///< drive reports itself dead
  std::array<std::uint32_t, kNumErrorTypes> errors{};  ///< per-type daily counts

  // Class-specific telemetry channels (always zero outside their class).
  std::uint32_t reallocated_sectors = 0;  ///< cumulative remapped sectors (HDD)
  std::uint32_t seek_errors = 0;          ///< seek errors this day (HDD)
  std::uint32_t media_wear = 0;           ///< cumulative media wearout units (NVMe)
  std::uint32_t throttle_events = 0;      ///< thermal throttles this day (NVMe)

  [[nodiscard]] std::uint32_t error(ErrorType e) const noexcept {
    return errors[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] bool any_nontransparent_error() const noexcept {
    for (ErrorType e : kAllErrorTypes)
      if (!is_transparent(e) && error(e) > 0) return true;
    return false;
  }
  /// A day with no read and no write activity (the paper's notion of
  /// inactivity used when locating the failure point).
  [[nodiscard]] bool inactive() const noexcept { return reads == 0 && writes == 0; }

  /// Field-wise equality (the sanitizer's exact-duplicate test).
  [[nodiscard]] bool operator==(const DailyRecord&) const noexcept = default;
};

/// A swap event: the drive was physically extracted for repair on `day`.
/// Every swap corresponds to exactly one preceding catastrophic failure.
struct SwapEvent {
  std::int32_t day = 0;
};

/// Schema metadata for every 32-bit counter field of DailyRecord.
/// Validation, the record sanitizer, and the format tests derive their
/// field lists from this table instead of hard-coding the original SSD
/// columns, so class-specific channels are covered automatically when the
/// schema grows (the per-error counters are appended separately by the
/// consumers — they share one spec).
struct RecordCounterField {
  std::string_view name;
  /// Non-decreasing within a drive's history (a controller reset that
  /// rewinds it is a violation the sanitizer repairs by clamping).
  bool cumulative = false;
  std::uint32_t DailyRecord::* field = nullptr;
  /// Class whose hardware reports the channel; kMlcSsd doubles as "every
  /// class" for the original SMART-style counters.
  DeviceClass owner = DeviceClass::kMlcSsd;
};

inline constexpr std::array<RecordCounterField, 9> kRecordCounterFields = {{
    {"reads", false, &DailyRecord::reads, DeviceClass::kMlcSsd},
    {"writes", false, &DailyRecord::writes, DeviceClass::kMlcSsd},
    {"erases", false, &DailyRecord::erases, DeviceClass::kMlcSsd},
    {"pe_cycles", true, &DailyRecord::pe_cycles, DeviceClass::kMlcSsd},
    {"bad_blocks", true, &DailyRecord::bad_blocks, DeviceClass::kMlcSsd},
    {"reallocated_sectors", true, &DailyRecord::reallocated_sectors,
     DeviceClass::kHdd},
    {"seek_errors", false, &DailyRecord::seek_errors, DeviceClass::kHdd},
    {"media_wear", true, &DailyRecord::media_wear, DeviceClass::kNvmeSsd},
    {"throttle_events", false, &DailyRecord::throttle_events,
     DeviceClass::kNvmeSsd},
}};

/// The class-specific extension fields (the tail of kRecordCounterFields),
/// in serialization order — the order the store's ZoneColumns, the WAL
/// payload, and the v1 row format append them in.
inline constexpr std::size_t kNumExtCounterFields = 4;
inline constexpr std::array<RecordCounterField, kNumExtCounterFields>
    kExtCounterFields = {{
        kRecordCounterFields[5],
        kRecordCounterFields[6],
        kRecordCounterFields[7],
        kRecordCounterFields[8],
    }};

/// Running cumulative totals over a drive's records; used by feature
/// extraction and the correlation study.
struct CumulativeState {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t erases = 0;
  std::array<std::uint64_t, kNumErrorTypes> errors{};

  void apply(const DailyRecord& r) noexcept {
    reads += r.reads;
    writes += r.writes;
    erases += r.erases;
    for (std::size_t i = 0; i < kNumErrorTypes; ++i) errors[i] += r.errors[i];
  }
  [[nodiscard]] std::uint64_t error(ErrorType e) const noexcept {
    return errors[static_cast<std::size_t>(e)];
  }
};

}  // namespace ssdfail::trace
