#pragma once

// The drive-log schema of Section 2 of the paper.
//
// Each drive emits at most one DailyRecord per day of operation: workload
// counters, cumulative wear, status flags, bad-block counts, and the counts
// of ten error types.  Swap events (Section 3) live in a separate log.

#include <array>
#include <cstdint>
#include <string_view>

namespace ssdfail::trace {

/// The three MLC drive models of the study.
enum class DriveModel : std::uint8_t { MlcA = 0, MlcB = 1, MlcD = 2 };

inline constexpr std::size_t kNumModels = 3;
inline constexpr std::array<DriveModel, kNumModels> kAllModels = {
    DriveModel::MlcA, DriveModel::MlcB, DriveModel::MlcD};

[[nodiscard]] std::string_view model_name(DriveModel m) noexcept;

/// The ten error types reported by the custom firmware (Section 2).
enum class ErrorType : std::uint8_t {
  kCorrectable = 0,   // bits corrected by internal ECC during reads
  kErase = 1,         // erase operations that failed
  kFinalRead = 2,     // reads that failed even after retries
  kFinalWrite = 3,    // writes that failed even after retries
  kMeta = 4,          // errors reading drive-internal metadata
  kRead = 5,          // reads that errored but succeeded on retry
  kResponse = 6,      // bad responses from the drive
  kTimeout = 7,       // operations that timed out
  kUncorrectable = 8, // uncorrectable ECC errors during reads
  kWrite = 9,         // writes that errored but succeeded on retry
};

inline constexpr std::size_t kNumErrorTypes = 10;
inline constexpr std::array<ErrorType, kNumErrorTypes> kAllErrorTypes = {
    ErrorType::kCorrectable, ErrorType::kErase,     ErrorType::kFinalRead,
    ErrorType::kFinalWrite,  ErrorType::kMeta,      ErrorType::kRead,
    ErrorType::kResponse,    ErrorType::kTimeout,   ErrorType::kUncorrectable,
    ErrorType::kWrite};

[[nodiscard]] std::string_view error_name(ErrorType e) noexcept;

/// Transparent errors may be hidden from the user (correctable, erase,
/// read, write); non-transparent errors may not (final read/write, meta,
/// response, timeout, uncorrectable).  Section 2.
[[nodiscard]] constexpr bool is_transparent(ErrorType e) noexcept {
  switch (e) {
    case ErrorType::kCorrectable:
    case ErrorType::kErase:
    case ErrorType::kRead:
    case ErrorType::kWrite:
      return true;
    default:
      return false;
  }
}

/// One day of drive activity, as reported by the log.
struct DailyRecord {
  std::int32_t day = 0;          ///< absolute day index within the trace window
  std::uint32_t reads = 0;       ///< read operations this day
  std::uint32_t writes = 0;      ///< write operations this day
  std::uint32_t erases = 0;      ///< erase operations this day
  std::uint32_t pe_cycles = 0;   ///< cumulative program/erase cycles
  std::uint32_t bad_blocks = 0;  ///< cumulative non-factory bad blocks
  std::uint16_t factory_bad_blocks = 0;  ///< bad on arrival (constant)
  bool read_only = false;        ///< drive operating in read-only mode
  bool dead = false;             ///< drive reports itself dead
  std::array<std::uint32_t, kNumErrorTypes> errors{};  ///< per-type daily counts

  [[nodiscard]] std::uint32_t error(ErrorType e) const noexcept {
    return errors[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] bool any_nontransparent_error() const noexcept {
    for (ErrorType e : kAllErrorTypes)
      if (!is_transparent(e) && error(e) > 0) return true;
    return false;
  }
  /// A day with no read and no write activity (the paper's notion of
  /// inactivity used when locating the failure point).
  [[nodiscard]] bool inactive() const noexcept { return reads == 0 && writes == 0; }

  /// Field-wise equality (the sanitizer's exact-duplicate test).
  [[nodiscard]] bool operator==(const DailyRecord&) const noexcept = default;
};

/// A swap event: the drive was physically extracted for repair on `day`.
/// Every swap corresponds to exactly one preceding catastrophic failure.
struct SwapEvent {
  std::int32_t day = 0;
};

/// Running cumulative totals over a drive's records; used by feature
/// extraction and the correlation study.
struct CumulativeState {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t erases = 0;
  std::array<std::uint64_t, kNumErrorTypes> errors{};

  void apply(const DailyRecord& r) noexcept {
    reads += r.reads;
    writes += r.writes;
    erases += r.erases;
    for (std::size_t i = 0; i < kNumErrorTypes; ++i) errors[i] += r.errors[i];
  }
  [[nodiscard]] std::uint64_t error(ErrorType e) const noexcept {
    return errors[static_cast<std::size_t>(e)];
  }
};

}  // namespace ssdfail::trace
