#pragma once

// Trace (de)serialization.
//
// CSV layout mirrors the daily-log schema one row per drive-day, plus a
// separate swap-event file — i.e. the same "two logs" structure the paper
// works from.  Ground truth is intentionally not serialized: a written
// trace contains exactly what a real data center would have.

#include <iosfwd>
#include <string>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {

/// Header written as the first CSV row of a daily log.
[[nodiscard]] std::string daily_log_header();

/// Write all drives' daily records as CSV (one row per drive-day).
void write_daily_log(std::ostream& out, const FleetTrace& fleet);

/// Write all swap events as CSV: drive uid, model, day.
void write_swap_log(std::ostream& out, const FleetTrace& fleet);

/// Read a fleet back from the two CSV logs produced above.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] FleetTrace read_fleet(std::istream& daily_log, std::istream& swap_log);

}  // namespace ssdfail::trace
