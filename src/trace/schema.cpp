#include "trace/schema.hpp"

namespace ssdfail::trace {

std::string_view model_name(DriveModel m) noexcept {
  switch (m) {
    case DriveModel::MlcA: return "MLC-A";
    case DriveModel::MlcB: return "MLC-B";
    case DriveModel::MlcD: return "MLC-D";
  }
  return "MLC-?";
}

std::string_view error_name(ErrorType e) noexcept {
  switch (e) {
    case ErrorType::kCorrectable: return "correctable";
    case ErrorType::kErase: return "erase";
    case ErrorType::kFinalRead: return "final_read";
    case ErrorType::kFinalWrite: return "final_write";
    case ErrorType::kMeta: return "meta";
    case ErrorType::kRead: return "read";
    case ErrorType::kResponse: return "response";
    case ErrorType::kTimeout: return "timeout";
    case ErrorType::kUncorrectable: return "uncorrectable";
    case ErrorType::kWrite: return "write";
  }
  return "unknown";
}

}  // namespace ssdfail::trace
