#include "trace/schema.hpp"

namespace ssdfail::trace {

std::string_view model_name(DriveModel m) noexcept {
  switch (m) {
    case DriveModel::MlcA: return "MLC-A";
    case DriveModel::MlcB: return "MLC-B";
    case DriveModel::MlcD: return "MLC-D";
    case DriveModel::Hdd: return "HDD-E";
    case DriveModel::Nvme: return "NVME-F";
  }
  return "MLC-?";
}

std::string_view device_class_name(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::kMlcSsd: return "mlc-ssd";
    case DeviceClass::kHdd: return "hdd";
    case DeviceClass::kNvmeSsd: return "nvme-ssd";
  }
  return "unknown";
}

std::vector<DriveModel> models_of_class(DeviceClass c) {
  std::vector<DriveModel> out;
  for (DriveModel m : kAllModels)
    if (device_class(m) == c) out.push_back(m);
  return out;
}

std::string_view error_name(ErrorType e) noexcept {
  switch (e) {
    case ErrorType::kCorrectable: return "correctable";
    case ErrorType::kErase: return "erase";
    case ErrorType::kFinalRead: return "final_read";
    case ErrorType::kFinalWrite: return "final_write";
    case ErrorType::kMeta: return "meta";
    case ErrorType::kRead: return "read";
    case ErrorType::kResponse: return "response";
    case ErrorType::kTimeout: return "timeout";
    case ErrorType::kUncorrectable: return "uncorrectable";
    case ErrorType::kWrite: return "write";
  }
  return "unknown";
}

}  // namespace ssdfail::trace
