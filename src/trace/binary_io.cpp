#include "trace/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "store/columnar.hpp"
#include "trace/io_metrics.hpp"

namespace ssdfail::trace {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'D', 'F'};

/// Records decoded per buffered block read.  Bounds both the read buffer
/// (~536 KiB) and the `reserve` on untrusted record counts, so a corrupt
/// count hits "truncated stream" before it can trigger a huge allocation.
constexpr std::size_t kRecordsPerBlock = 8192;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary_io: truncated stream");
  return value;
}

/// Fill `buf` with exactly `n` bytes or throw the truncation error.
void read_block(std::istream& in, std::vector<char>& buf, std::size_t n) {
  buf.resize(n);
  in.read(buf.data(), static_cast<std::streamsize>(n));
  if (!in || static_cast<std::size_t>(in.gcount()) != n)
    throw std::runtime_error("binary_io: truncated stream");
}

template <typename T>
T load(const char*& p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}

void put_record(std::ostream& out, const DailyRecord& r) {
  put<std::int32_t>(out, r.day);
  put<std::uint32_t>(out, r.reads);
  put<std::uint32_t>(out, r.writes);
  put<std::uint32_t>(out, r.erases);
  put<std::uint32_t>(out, r.pe_cycles);
  put<std::uint32_t>(out, r.bad_blocks);
  put<std::uint16_t>(out, r.factory_bad_blocks);
  put<std::uint8_t>(out, static_cast<std::uint8_t>((r.read_only ? 1 : 0) |
                                                   (r.dead ? 2 : 0)));
  for (std::uint32_t e : r.errors) put<std::uint32_t>(out, e);
  for (const RecordCounterField& f : kExtCounterFields)
    put<std::uint32_t>(out, r.*f.field);
}

DailyRecord decode_record(const char*& p) {
  DailyRecord r;
  r.day = load<std::int32_t>(p);
  r.reads = load<std::uint32_t>(p);
  r.writes = load<std::uint32_t>(p);
  r.erases = load<std::uint32_t>(p);
  r.pe_cycles = load<std::uint32_t>(p);
  r.bad_blocks = load<std::uint32_t>(p);
  r.factory_bad_blocks = load<std::uint16_t>(p);
  const auto flags = load<std::uint8_t>(p);
  r.read_only = (flags & 1) != 0;
  r.dead = (flags & 2) != 0;
  for (std::uint32_t& e : r.errors) e = load<std::uint32_t>(p);
  for (const RecordCounterField& f : kExtCounterFields)
    r.*f.field = load<std::uint32_t>(p);
  return r;
}

/// v1 body decoder: the magic and version have already been consumed.
/// Records and swaps are read in large blocks rather than one stream read
/// per field — the stream is touched O(n_records / kRecordsPerBlock) times
/// per drive instead of 17 times per record.
FleetTrace read_binary_v1_body(std::istream& in) {
  const auto n_drives = get<std::uint64_t>(in);
  // Defensive cap: a 64-bit count from a corrupt stream must not OOM us.
  if (n_drives > (1ull << 32))
    throw std::runtime_error("binary_io: implausible drive count");

  FleetTrace fleet;
  fleet.drives.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n_drives, 1u << 20)));
  std::vector<char> buf;
  for (std::uint64_t d = 0; d < n_drives; ++d) {
    DriveHistory drive;
    const auto model = get<std::uint8_t>(in);
    if (model >= kNumModels) throw std::runtime_error("binary_io: bad model id");
    drive.model = static_cast<DriveModel>(model);
    drive.drive_index = get<std::uint32_t>(in);
    drive.deploy_day = get<std::int32_t>(in);
    const auto n_records = get<std::uint64_t>(in);
    if (n_records > (1ull << 32)) throw std::runtime_error("binary_io: bad record count");
    const auto n = static_cast<std::size_t>(n_records);
    drive.records.reserve(std::min(n, kRecordsPerBlock));
    for (std::size_t start = 0; start < n; start += kRecordsPerBlock) {
      const std::size_t count = std::min(kRecordsPerBlock, n - start);
      read_block(in, buf, count * kRecordWireBytes);
      const char* p = buf.data();
      for (std::size_t r = 0; r < count; ++r) drive.records.push_back(decode_record(p));
    }
    const auto n_swaps = get<std::uint64_t>(in);
    if (n_swaps > (1ull << 20)) throw std::runtime_error("binary_io: bad swap count");
    if (n_swaps > 0) {
      const auto ns = static_cast<std::size_t>(n_swaps);
      read_block(in, buf, ns * sizeof(std::int32_t));
      const char* p = buf.data();
      drive.swaps.reserve(ns);
      for (std::size_t s = 0; s < ns; ++s) drive.swaps.push_back({load<std::int32_t>(p)});
    }
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

/// v2/v3 body decoder: slurp the remaining stream, re-assemble the full
/// file image (magic + version + rest), and hand it to the columnar
/// parser, which dispatches on the version itself.
FleetTrace read_binary_columnar_body(std::istream& in, std::uint32_t version) {
  std::vector<char> image;
  image.insert(image.end(), kMagic, kMagic + sizeof(kMagic));
  const char* vp = reinterpret_cast<const char*>(&version);
  image.insert(image.end(), vp, vp + sizeof(version));
  char buf[1 << 16];
  for (;;) {
    in.read(buf, sizeof(buf));
    image.insert(image.end(), buf, buf + in.gcount());
    if (!in) break;
  }
  in.clear();  // EOF from the slurp is expected, not an error
  auto view = store::ColumnarFleetView::from_buffer(std::move(image));
  return store::materialize(view);
}

}  // namespace

void write_binary(std::ostream& out, const FleetTrace& fleet) {
  static const obs::SiteId kSite = obs::intern_site("trace.write_binary");
  obs::Span span(kSite);
  detail::WriteByteCount bytes(out, "binary");
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kBinaryFormatVersion);
  put<std::uint64_t>(out, fleet.drives.size());
  for (const DriveHistory& d : fleet.drives) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.model));
    put<std::uint32_t>(out, d.drive_index);
    put<std::int32_t>(out, d.deploy_day);
    put<std::uint64_t>(out, d.records.size());
    for (const DailyRecord& r : d.records) put_record(out, r);
    put<std::uint64_t>(out, d.swaps.size());
    for (const SwapEvent& s : d.swaps) put<std::int32_t>(out, s.day);
  }
}

void write_binary_v2(std::ostream& out, const FleetTrace& fleet,
                     std::uint32_t chunk_drives) {
  store::ColumnarWriteOptions options;
  if (chunk_drives != 0) options.chunk_drives = chunk_drives;
  store::write_columnar(out, fleet, options);
}

void write_binary_v3(std::ostream& out, const FleetTrace& fleet,
                     std::uint32_t chunk_drives) {
  store::ColumnarWriteOptions options;
  options.version = store::kColumnarVersionV3;
  if (chunk_drives != 0) options.chunk_drives = chunk_drives;
  store::write_columnar(out, fleet, options);
}

FleetTrace read_binary(std::istream& in) {
  static const obs::SiteId kSite = obs::intern_site("trace.read_binary");
  obs::Span span(kSite);
  detail::ReadByteCount bytes(in, "binary");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("binary_io: bad magic (not an ssdfail binary trace)");
  const auto version = get<std::uint32_t>(in);
  if (version == kBinaryFormatVersion) return read_binary_v1_body(in);
  if (version == kColumnarFormatVersion || version == kColumnarV3FormatVersion)
    return read_binary_columnar_body(in, version);
  throw std::runtime_error("binary_io: unsupported format version " +
                           std::to_string(version));
}

std::uint32_t peek_binary_version(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  if (start < 0) throw std::runtime_error("binary_io: stream is not seekable");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    in.clear();
    in.seekg(start);
    throw std::runtime_error("binary_io: bad magic (not an ssdfail binary trace)");
  }
  const auto version = get<std::uint32_t>(in);
  in.seekg(start);
  return version;
}

void convert_binary(std::istream& in, std::ostream& out, std::uint32_t to_version,
                    std::uint32_t chunk_drives) {
  const FleetTrace fleet = read_binary(in);
  if (to_version == kBinaryFormatVersion) {
    write_binary(out, fleet);
  } else if (to_version == kColumnarFormatVersion) {
    write_binary_v2(out, fleet, chunk_drives);
  } else if (to_version == kColumnarV3FormatVersion) {
    write_binary_v3(out, fleet, chunk_drives);
  } else {
    throw std::runtime_error("binary_io: unsupported format version " +
                             std::to_string(to_version));
  }
}

}  // namespace ssdfail::trace
