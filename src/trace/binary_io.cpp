#include "trace/binary_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "trace/io_metrics.hpp"

namespace ssdfail::trace {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'D', 'F'};

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary_io: truncated stream");
  return value;
}

void put_record(std::ostream& out, const DailyRecord& r) {
  put<std::int32_t>(out, r.day);
  put<std::uint32_t>(out, r.reads);
  put<std::uint32_t>(out, r.writes);
  put<std::uint32_t>(out, r.erases);
  put<std::uint32_t>(out, r.pe_cycles);
  put<std::uint32_t>(out, r.bad_blocks);
  put<std::uint16_t>(out, r.factory_bad_blocks);
  put<std::uint8_t>(out, static_cast<std::uint8_t>((r.read_only ? 1 : 0) |
                                                   (r.dead ? 2 : 0)));
  for (std::uint32_t e : r.errors) put<std::uint32_t>(out, e);
}

DailyRecord get_record(std::istream& in) {
  DailyRecord r;
  r.day = get<std::int32_t>(in);
  r.reads = get<std::uint32_t>(in);
  r.writes = get<std::uint32_t>(in);
  r.erases = get<std::uint32_t>(in);
  r.pe_cycles = get<std::uint32_t>(in);
  r.bad_blocks = get<std::uint32_t>(in);
  r.factory_bad_blocks = get<std::uint16_t>(in);
  const auto flags = get<std::uint8_t>(in);
  r.read_only = (flags & 1) != 0;
  r.dead = (flags & 2) != 0;
  for (std::uint32_t& e : r.errors) e = get<std::uint32_t>(in);
  return r;
}

}  // namespace

void write_binary(std::ostream& out, const FleetTrace& fleet) {
  static const obs::SiteId kSite = obs::intern_site("trace.write_binary");
  obs::Span span(kSite);
  detail::WriteByteCount bytes(out, "binary");
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kBinaryFormatVersion);
  put<std::uint64_t>(out, fleet.drives.size());
  for (const DriveHistory& d : fleet.drives) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.model));
    put<std::uint32_t>(out, d.drive_index);
    put<std::int32_t>(out, d.deploy_day);
    put<std::uint64_t>(out, d.records.size());
    for (const DailyRecord& r : d.records) put_record(out, r);
    put<std::uint64_t>(out, d.swaps.size());
    for (const SwapEvent& s : d.swaps) put<std::int32_t>(out, s.day);
  }
}

FleetTrace read_binary(std::istream& in) {
  static const obs::SiteId kSite = obs::intern_site("trace.read_binary");
  obs::Span span(kSite);
  detail::ReadByteCount bytes(in, "binary");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("binary_io: bad magic (not an ssdfail binary trace)");
  const auto version = get<std::uint32_t>(in);
  if (version != kBinaryFormatVersion)
    throw std::runtime_error("binary_io: unsupported format version " +
                             std::to_string(version));
  const auto n_drives = get<std::uint64_t>(in);
  // Defensive cap: a 64-bit count from a corrupt stream must not OOM us.
  if (n_drives > (1ull << 32))
    throw std::runtime_error("binary_io: implausible drive count");

  FleetTrace fleet;
  fleet.drives.reserve(static_cast<std::size_t>(n_drives));
  for (std::uint64_t d = 0; d < n_drives; ++d) {
    DriveHistory drive;
    const auto model = get<std::uint8_t>(in);
    if (model >= kNumModels) throw std::runtime_error("binary_io: bad model id");
    drive.model = static_cast<DriveModel>(model);
    drive.drive_index = get<std::uint32_t>(in);
    drive.deploy_day = get<std::int32_t>(in);
    const auto n_records = get<std::uint64_t>(in);
    if (n_records > (1ull << 32)) throw std::runtime_error("binary_io: bad record count");
    drive.records.reserve(static_cast<std::size_t>(n_records));
    for (std::uint64_t r = 0; r < n_records; ++r) drive.records.push_back(get_record(in));
    const auto n_swaps = get<std::uint64_t>(in);
    if (n_swaps > (1ull << 20)) throw std::runtime_error("binary_io: bad swap count");
    for (std::uint64_t s = 0; s < n_swaps; ++s)
      drive.swaps.push_back({get<std::int32_t>(in)});
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

}  // namespace ssdfail::trace
