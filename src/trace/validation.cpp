#include "trace/validation.hpp"

#include <limits>

namespace ssdfail::trace {

std::string_view violation_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneDays: return "non-monotone record days";
    case ViolationKind::kRecordBeforeDeploy: return "record before deploy day";
    case ViolationKind::kDecreasingPeCycles: return "decreasing P/E cycles";
    case ViolationKind::kDecreasingBadBlocks: return "decreasing bad blocks";
    case ViolationKind::kFactoryBadBlocksChanged: return "factory bad blocks changed";
    case ViolationKind::kSwapsOutOfOrder: return "swap days out of order";
    case ViolationKind::kSwapBeforeActivity: return "swap precedes all records";
    case ViolationKind::kErasesWithoutWrites: return "erases on a zero-write day";
    case ViolationKind::kImplausibleValue: return "saturated counter garbage";
    case ViolationKind::kDecreasingClassCounter:
      return "decreasing class-specific cumulative counter";
  }
  return "unknown";
}

std::string_view violation_slug(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneDays: return "non_monotone_days";
    case ViolationKind::kRecordBeforeDeploy: return "record_before_deploy";
    case ViolationKind::kDecreasingPeCycles: return "decreasing_pe_cycles";
    case ViolationKind::kDecreasingBadBlocks: return "decreasing_bad_blocks";
    case ViolationKind::kFactoryBadBlocksChanged: return "factory_bad_blocks_changed";
    case ViolationKind::kSwapsOutOfOrder: return "swaps_out_of_order";
    case ViolationKind::kSwapBeforeActivity: return "swap_before_activity";
    case ViolationKind::kErasesWithoutWrites: return "erases_without_writes";
    case ViolationKind::kImplausibleValue: return "implausible_value";
    case ViolationKind::kDecreasingClassCounter: return "decreasing_class_counter";
  }
  return "unknown";
}

bool implausible_record(const DailyRecord& rec) noexcept {
  constexpr std::uint32_t kSat = std::numeric_limits<std::uint32_t>::max();
  for (const RecordCounterField& f : kRecordCounterFields)
    if (rec.*f.field == kSat) return true;
  for (std::uint32_t e : rec.errors)
    if (e == kSat) return true;
  return false;
}

void validate_history(const DriveHistory& drive, std::vector<Violation>& out) {
  const std::uint64_t uid = drive.uid();
  auto report = [&](ViolationKind kind, std::int32_t day, std::string detail) {
    out.push_back({kind, uid, day, std::move(detail)});
  };

  const DailyRecord* prev = nullptr;
  for (const DailyRecord& rec : drive.records) {
    if (rec.day < drive.deploy_day)
      report(ViolationKind::kRecordBeforeDeploy, rec.day,
             "deploy day is " + std::to_string(drive.deploy_day));
    if (rec.erases > 0 && rec.writes == 0)
      report(ViolationKind::kErasesWithoutWrites, rec.day,
             std::to_string(rec.erases) + " erases");
    if (implausible_record(rec))
      report(ViolationKind::kImplausibleValue, rec.day, "counter at saturation");
    if (prev != nullptr) {
      if (rec.day <= prev->day)
        report(ViolationKind::kNonMonotoneDays, rec.day,
               "previous record at day " + std::to_string(prev->day));
      for (const RecordCounterField& f : kRecordCounterFields) {
        if (!f.cumulative) continue;
        if (rec.*f.field < prev->*f.field)
          report(decreasing_kind(f), rec.day,
                 std::string(f.name) + " " + std::to_string(prev->*f.field) +
                     " -> " + std::to_string(rec.*f.field));
      }
      if (rec.factory_bad_blocks != prev->factory_bad_blocks)
        report(ViolationKind::kFactoryBadBlocksChanged, rec.day,
               std::to_string(prev->factory_bad_blocks) + " -> " +
                   std::to_string(rec.factory_bad_blocks));
    }
    prev = &rec;
  }

  const SwapEvent* prev_swap = nullptr;
  for (const SwapEvent& swap : drive.swaps) {
    if (prev_swap != nullptr && swap.day <= prev_swap->day)
      report(ViolationKind::kSwapsOutOfOrder, swap.day,
             "previous swap at day " + std::to_string(prev_swap->day));
    if (drive.records.empty() || swap.day <= drive.records.front().day)
      report(ViolationKind::kSwapBeforeActivity, swap.day, "");
    prev_swap = &swap;
  }
}

std::vector<Violation> validate_fleet(const FleetTrace& fleet) {
  std::vector<Violation> out;
  for (const DriveHistory& drive : fleet.drives) validate_history(drive, out);
  return out;
}

}  // namespace ssdfail::trace
