#include "trace/drive_history.hpp"

// Currently header-only logic; translation unit kept so the library has a
// stable archive member and a place for future out-of-line helpers.

namespace ssdfail::trace {}  // namespace ssdfail::trace
