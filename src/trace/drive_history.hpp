#pragma once

// Per-drive trace container plus simulator-side ground truth.
//
// Analysis code (src/core) must treat `records` + `swaps` as the only
// observable data, exactly like the paper's authors: failure points are
// *re-derived* from activity patterns, never read from GroundTruth.
// GroundTruth exists so tests can check that the re-derivation is correct.

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/schema.hpp"

namespace ssdfail::trace {

/// Simulator-internal truth about a drive's life; hidden from analysis.
struct GroundTruth {
  /// Days on which the drive actually failed (simulator decision).
  std::vector<std::int32_t> failure_days;
  /// True if the drive was generated in the "silent failure" mode for the
  /// corresponding failure (no error symptoms at all).
  std::vector<bool> silent;
  /// Latent frailty multiplier (hazard scale) assigned to the drive.
  double frailty = 1.0;
  /// Latent error-proneness multiplier.
  double error_proneness = 1.0;
};

/// Complete observable history of one drive within the trace window.
struct DriveHistory {
  DriveModel model = DriveModel::MlcA;
  std::uint32_t drive_index = 0;   ///< unique within its model
  std::int32_t deploy_day = 0;     ///< first day the drive could report

  /// Daily records, strictly increasing in `day`.  Gaps are real: a missing
  /// day means the drive did not report (log loss or non-operation).
  std::vector<DailyRecord> records;

  /// Swap events, strictly increasing in `day`.
  std::vector<SwapEvent> swaps;

  /// Simulator-only ground truth (not populated when reading real traces).
  std::optional<GroundTruth> truth;

  /// Globally unique drive id across models (model-tagged).
  [[nodiscard]] std::uint64_t uid() const noexcept {
    return (static_cast<std::uint64_t>(model) << 32) | drive_index;
  }

  /// Day of the last record, or deploy_day-1 if the drive never reported.
  [[nodiscard]] std::int32_t last_observed_day() const noexcept {
    return records.empty() ? deploy_day - 1 : records.back().day;
  }

  /// Age (days since deploy) of the last observation ("Max Age" in Fig 1).
  [[nodiscard]] std::int32_t max_observed_age() const noexcept {
    return last_observed_day() - deploy_day + 1;
  }

  /// End-of-history cumulative counters.
  [[nodiscard]] CumulativeState final_cumulative() const noexcept {
    CumulativeState c;
    for (const auto& r : records) c.apply(r);
    return c;
  }
};

/// An in-memory fleet (used by tests, examples, and small experiments; the
/// bench pipeline streams drives instead of materializing the fleet).
struct FleetTrace {
  std::vector<DriveHistory> drives;

  [[nodiscard]] std::size_t total_records() const noexcept {
    std::size_t n = 0;
    for (const auto& d : drives) n += d.records.size();
    return n;
  }
  [[nodiscard]] std::size_t total_swaps() const noexcept {
    std::size_t n = 0;
    for (const auto& d : drives) n += d.swaps.size();
    return n;
  }
};

}  // namespace ssdfail::trace
