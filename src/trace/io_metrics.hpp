#pragma once

// Byte counters for trace I/O, shared by the CSV (trace_io.cpp) and binary
// (binary_io.cpp) paths: RAII guards measure a stream's position delta and
// add it to `trace_io_bytes_written_total{format=...}` /
// `trace_io_bytes_read_total{format=...}` on scope exit.  Non-seekable
// streams (tell* returns -1) are skipped silently — the counter is an
// observability aid, never a correctness dependency.

#include <istream>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace ssdfail::trace::detail {

inline obs::Counter& io_bytes_counter(const char* direction, const char* format) {
  return obs::MetricsRegistry::global().counter(
      std::string("trace_io_bytes_") + direction + "_total", {{"format", format}},
      "trace bytes moved through the I/O layer");
}

class WriteByteCount {
 public:
  WriteByteCount(std::ostream& out, const char* format)
      : out_(out), counter_(io_bytes_counter("written", format)), start_(out.tellp()) {}
  ~WriteByteCount() {
    if (start_ < 0) return;
    const std::streampos end = out_.tellp();
    if (end > start_) counter_.inc(static_cast<std::uint64_t>(end - start_));
  }
  WriteByteCount(const WriteByteCount&) = delete;
  WriteByteCount& operator=(const WriteByteCount&) = delete;

 private:
  std::ostream& out_;
  obs::Counter& counter_;
  std::streampos start_;
};

class ReadByteCount {
 public:
  ReadByteCount(std::istream& in, const char* format)
      : in_(in), counter_(io_bytes_counter("read", format)), start_(in.tellg()) {}
  ~ReadByteCount() {
    if (start_ < 0) return;
    // A failed read (eof/throw) leaves the stream in a failed state where
    // tellg() returns -1; clear temporarily so partial progress counts.
    const std::ios_base::iostate state = in_.rdstate();
    in_.clear();
    const std::streampos end = in_.tellg();
    in_.setstate(state);
    if (end > start_) counter_.inc(static_cast<std::uint64_t>(end - start_));
  }
  ReadByteCount(const ReadByteCount&) = delete;
  ReadByteCount& operator=(const ReadByteCount&) = delete;

 private:
  std::istream& in_;
  obs::Counter& counter_;
  std::streampos start_;
};

}  // namespace ssdfail::trace::detail
