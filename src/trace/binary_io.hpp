#pragma once

// Compact binary trace serialization.
//
// CSV (trace_io.hpp) is the interchange format; this is the fast path for
// large fleets: ~70 bytes per drive-day versus ~200 for CSV, and no
// parsing.  Little-endian, versioned, with a magic header.  Ground truth
// is never serialized (same observable-only contract as the CSV path).

#include <iosfwd>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {

/// Current binary format version.
inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Write the fleet (daily records + swap events) to a binary stream.
void write_binary(std::ostream& out, const FleetTrace& fleet);

/// Read a fleet written by write_binary.  Throws std::runtime_error on a
/// bad magic, unsupported version, or truncated stream.
[[nodiscard]] FleetTrace read_binary(std::istream& in);

}  // namespace ssdfail::trace
