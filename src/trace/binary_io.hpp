#pragma once

// Compact binary trace serialization.
//
// CSV (trace_io.hpp) is the interchange format; this is the fast path for
// large fleets.  Three on-disk versions share the "SSDF" magic:
//
//   v1 — row format: drives one after another, each a header plus a run of
//        kRecordWireBytes-byte DailyRecord structs (~86 bytes per
//        drive-day versus ~200 for CSV, and no parsing).
//   v2 — the chunked columnar store (store/columnar.hpp): per-field
//        columns, per-chunk CRC32, mmap-friendly.  Written via
//        write_binary_v2; read_binary auto-detects it and materializes the
//        fleet, while store::ColumnarFleetView::open gives zero-copy
//        access without materializing.
//   v3 — v2's layout with per-chunk compressed column frames and zone
//        maps (docs/DATA_FORMAT.md).  Written via write_binary_v3; the
//        same auto-detection reads it back.
//
// Little-endian, versioned.  Ground truth is never serialized (same
// observable-only contract as the CSV path).

#include <iosfwd>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {

/// Row (v1) binary format version.
inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Serialized size of one v1 DailyRecord: the 67-byte core plus one u32
/// per class-specific extension counter (kExtCounterFields).
inline constexpr std::size_t kRecordWireBytes = 67 + 4 * kNumExtCounterFields;

/// Columnar (v2) binary format version; mirrors store::kColumnarVersion.
inline constexpr std::uint32_t kColumnarFormatVersion = 2;

/// Compressed columnar (v3) version; mirrors store::kColumnarVersionV3.
inline constexpr std::uint32_t kColumnarV3FormatVersion = 3;

/// Write the fleet (daily records + swap events) to a binary stream in the
/// v1 row format.
void write_binary(std::ostream& out, const FleetTrace& fleet);

/// Write the fleet in the v2 columnar format.  `chunk_drives` = 0 means
/// the store default (store::kDefaultChunkDrives).
void write_binary_v2(std::ostream& out, const FleetTrace& fleet,
                     std::uint32_t chunk_drives = 0);

/// Write the fleet in the v3 compressed columnar format.
void write_binary_v3(std::ostream& out, const FleetTrace& fleet,
                     std::uint32_t chunk_drives = 0);

/// Read a fleet written by any write_binary* — the version field after the
/// magic selects the decoder.  Throws std::runtime_error on a bad magic,
/// unsupported version, truncated stream, or (v2/v3) CRC mismatch.
[[nodiscard]] FleetTrace read_binary(std::istream& in);

/// Sniff the format version of a binary trace without consuming the
/// stream (requires a seekable stream; throws on bad magic/truncation).
[[nodiscard]] std::uint32_t peek_binary_version(std::istream& in);

/// Re-encode a binary trace (any version in) as `to_version` (1, 2 or 3).
/// `chunk_drives` applies to columnar output only; 0 means the store
/// default.
void convert_binary(std::istream& in, std::ostream& out, std::uint32_t to_version,
                    std::uint32_t chunk_drives = 0);

}  // namespace ssdfail::trace
