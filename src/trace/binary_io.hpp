#pragma once

// Compact binary trace serialization.
//
// CSV (trace_io.hpp) is the interchange format; this is the fast path for
// large fleets.  Two on-disk versions share the "SSDF" magic:
//
//   v1 — row format: drives one after another, each a header plus a run of
//        67-byte DailyRecord structs (~70 bytes per drive-day versus ~200
//        for CSV, and no parsing).
//   v2 — the chunked columnar store (store/columnar.hpp): per-field
//        columns, per-chunk CRC32, mmap-friendly.  Written via
//        write_binary_v2; read_binary auto-detects it and materializes the
//        fleet, while store::ColumnarFleetView::open gives zero-copy
//        access without materializing.
//
// Little-endian, versioned.  Ground truth is never serialized (same
// observable-only contract as the CSV path).

#include <iosfwd>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {

/// Row (v1) binary format version.
inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Columnar (v2) binary format version; mirrors store::kColumnarVersion.
inline constexpr std::uint32_t kColumnarFormatVersion = 2;

/// Write the fleet (daily records + swap events) to a binary stream in the
/// v1 row format.
void write_binary(std::ostream& out, const FleetTrace& fleet);

/// Write the fleet in the v2 columnar format.  `chunk_drives` = 0 means
/// the store default (store::kDefaultChunkDrives).
void write_binary_v2(std::ostream& out, const FleetTrace& fleet,
                     std::uint32_t chunk_drives = 0);

/// Read a fleet written by write_binary or write_binary_v2 — the version
/// field after the magic selects the decoder.  Throws std::runtime_error
/// on a bad magic, unsupported version, truncated stream, or (v2) CRC
/// mismatch.
[[nodiscard]] FleetTrace read_binary(std::istream& in);

/// Sniff the format version of a binary trace without consuming the
/// stream (requires a seekable stream; throws on bad magic/truncation).
[[nodiscard]] std::uint32_t peek_binary_version(std::istream& in);

/// Re-encode a binary trace (either version in) as `to_version` (1 or 2).
/// `chunk_drives` applies to v2 output only; 0 means the store default.
void convert_binary(std::istream& in, std::ostream& out, std::uint32_t to_version,
                    std::uint32_t chunk_drives = 0);

}  // namespace ssdfail::trace
