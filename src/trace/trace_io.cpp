#include "trace/trace_io.hpp"

#include <charconv>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

#include "io/csv.hpp"
#include "obs/trace_span.hpp"
#include "trace/io_metrics.hpp"

namespace ssdfail::trace {
namespace {

template <typename T>
T parse_number(const std::string& s) {
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size())
    throw std::runtime_error("trace_io: bad numeric field '" + s + "'");
  return value;
}

DriveModel parse_model(const std::string& s) {
  for (DriveModel m : kAllModels)
    if (s == model_name(m)) return m;
  throw std::runtime_error("trace_io: unknown model '" + s + "'");
}

}  // namespace

std::string daily_log_header() {
  std::string h = "drive_uid,model,drive_index,deploy_day,day,reads,writes,erases,"
                  "pe_cycles,bad_blocks,factory_bad_blocks,read_only,dead";
  for (ErrorType e : kAllErrorTypes) {
    h += ',';
    h += std::string(error_name(e)) + "_errors";
  }
  return h;
}

void write_daily_log(std::ostream& out, const FleetTrace& fleet) {
  static const obs::SiteId kSite = obs::intern_site("trace.write_daily_log");
  obs::Span span(kSite);
  detail::WriteByteCount bytes(out, "csv");
  out << daily_log_header() << '\n';
  for (const auto& d : fleet.drives) {
    for (const auto& r : d.records) {
      out << d.uid() << ',' << model_name(d.model) << ',' << d.drive_index << ','
          << d.deploy_day << ',' << r.day << ',' << r.reads << ',' << r.writes << ','
          << r.erases << ',' << r.pe_cycles << ',' << r.bad_blocks << ','
          << r.factory_bad_blocks << ',' << (r.read_only ? 1 : 0) << ','
          << (r.dead ? 1 : 0);
      for (std::uint32_t e : r.errors) out << ',' << e;
      out << '\n';
    }
  }
}

void write_swap_log(std::ostream& out, const FleetTrace& fleet) {
  detail::WriteByteCount bytes(out, "csv");
  out << "drive_uid,model,drive_index,day\n";
  for (const auto& d : fleet.drives)
    for (const auto& s : d.swaps)
      out << d.uid() << ',' << model_name(d.model) << ',' << d.drive_index << ','
          << s.day << '\n';
}

FleetTrace read_fleet(std::istream& daily_log, std::istream& swap_log) {
  static const obs::SiteId kSite = obs::intern_site("trace.read_fleet");
  obs::Span span(kSite);
  detail::ReadByteCount daily_bytes(daily_log, "csv");
  detail::ReadByteCount swap_bytes(swap_log, "csv");
  const auto daily_rows = io::read_csv(daily_log);
  const auto swap_rows = io::read_csv(swap_log);
  if (daily_rows.empty()) throw std::runtime_error("trace_io: empty daily log");

  // uid -> drive, preserving first-seen order via an index map.
  std::map<std::uint64_t, std::size_t> index;
  FleetTrace fleet;

  constexpr std::size_t kFixedCols = 13;
  for (std::size_t row = 1; row < daily_rows.size(); ++row) {
    const auto& f = daily_rows[row];
    if (f.size() != kFixedCols + kNumErrorTypes)
      throw std::runtime_error("trace_io: wrong daily-log column count");
    const auto uid = parse_number<std::uint64_t>(f[0]);
    auto [it, inserted] = index.try_emplace(uid, fleet.drives.size());
    if (inserted) {
      DriveHistory d;
      d.model = parse_model(f[1]);
      d.drive_index = parse_number<std::uint32_t>(f[2]);
      d.deploy_day = parse_number<std::int32_t>(f[3]);
      fleet.drives.push_back(std::move(d));
    }
    DriveHistory& d = fleet.drives[it->second];
    DailyRecord r;
    r.day = parse_number<std::int32_t>(f[4]);
    r.reads = parse_number<std::uint32_t>(f[5]);
    r.writes = parse_number<std::uint32_t>(f[6]);
    r.erases = parse_number<std::uint32_t>(f[7]);
    r.pe_cycles = parse_number<std::uint32_t>(f[8]);
    r.bad_blocks = parse_number<std::uint32_t>(f[9]);
    r.factory_bad_blocks = parse_number<std::uint16_t>(f[10]);
    r.read_only = parse_number<int>(f[11]) != 0;
    r.dead = parse_number<int>(f[12]) != 0;
    for (std::size_t e = 0; e < kNumErrorTypes; ++e)
      r.errors[e] = parse_number<std::uint32_t>(f[kFixedCols + e]);
    d.records.push_back(r);
  }

  for (std::size_t row = 1; row < swap_rows.size(); ++row) {
    const auto& f = swap_rows[row];
    if (f.size() != 4) throw std::runtime_error("trace_io: wrong swap-log column count");
    const auto uid = parse_number<std::uint64_t>(f[0]);
    const auto it = index.find(uid);
    if (it == index.end())
      throw std::runtime_error("trace_io: swap event for unknown drive");
    fleet.drives[it->second].swaps.push_back({parse_number<std::int32_t>(f[3])});
  }
  return fleet;
}

}  // namespace ssdfail::trace
