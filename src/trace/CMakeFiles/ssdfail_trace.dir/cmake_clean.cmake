file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_trace.dir/binary_io.cpp.o"
  "CMakeFiles/ssdfail_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/ssdfail_trace.dir/drive_history.cpp.o"
  "CMakeFiles/ssdfail_trace.dir/drive_history.cpp.o.d"
  "CMakeFiles/ssdfail_trace.dir/schema.cpp.o"
  "CMakeFiles/ssdfail_trace.dir/schema.cpp.o.d"
  "CMakeFiles/ssdfail_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ssdfail_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/ssdfail_trace.dir/validation.cpp.o"
  "CMakeFiles/ssdfail_trace.dir/validation.cpp.o.d"
  "libssdfail_trace.a"
  "libssdfail_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
