
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/ssdfail_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/ssdfail_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/drive_history.cpp" "src/trace/CMakeFiles/ssdfail_trace.dir/drive_history.cpp.o" "gcc" "src/trace/CMakeFiles/ssdfail_trace.dir/drive_history.cpp.o.d"
  "/root/repo/src/trace/schema.cpp" "src/trace/CMakeFiles/ssdfail_trace.dir/schema.cpp.o" "gcc" "src/trace/CMakeFiles/ssdfail_trace.dir/schema.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/ssdfail_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/ssdfail_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/validation.cpp" "src/trace/CMakeFiles/ssdfail_trace.dir/validation.cpp.o" "gcc" "src/trace/CMakeFiles/ssdfail_trace.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/io/CMakeFiles/ssdfail_io.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  "/root/repo/src/store/CMakeFiles/ssdfail_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
