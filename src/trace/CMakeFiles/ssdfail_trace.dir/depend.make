# Empty dependencies file for ssdfail_trace.
# This may be replaced when dependencies are built.
