file(REMOVE_RECURSE
  "libssdfail_trace.a"
)
