
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/columnar.cpp" "src/store/CMakeFiles/ssdfail_store.dir/columnar.cpp.o" "gcc" "src/store/CMakeFiles/ssdfail_store.dir/columnar.cpp.o.d"
  "/root/repo/src/store/crc32.cpp" "src/store/CMakeFiles/ssdfail_store.dir/crc32.cpp.o" "gcc" "src/store/CMakeFiles/ssdfail_store.dir/crc32.cpp.o.d"
  "/root/repo/src/store/mmap_file.cpp" "src/store/CMakeFiles/ssdfail_store.dir/mmap_file.cpp.o" "gcc" "src/store/CMakeFiles/ssdfail_store.dir/mmap_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
