# Empty dependencies file for ssdfail_store.
# This may be replaced when dependencies are built.
