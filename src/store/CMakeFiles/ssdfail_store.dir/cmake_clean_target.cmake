file(REMOVE_RECURSE
  "libssdfail_store.a"
)
