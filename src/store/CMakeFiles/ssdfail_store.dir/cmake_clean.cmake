file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_store.dir/columnar.cpp.o"
  "CMakeFiles/ssdfail_store.dir/columnar.cpp.o.d"
  "CMakeFiles/ssdfail_store.dir/crc32.cpp.o"
  "CMakeFiles/ssdfail_store.dir/crc32.cpp.o.d"
  "CMakeFiles/ssdfail_store.dir/mmap_file.cpp.o"
  "CMakeFiles/ssdfail_store.dir/mmap_file.cpp.o.d"
  "libssdfail_store.a"
  "libssdfail_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
