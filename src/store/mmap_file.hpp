#pragma once

// Read-only memory mapping with graceful degradation.
//
// MappedFile::map() returns nullopt on ANY failure (missing file, zero
// size, no mmap support on the platform) — the columnar store treats that
// as "fall back to a heap buffer", never as an error.  The mapping is
// private/read-only: the kernel serves pages straight from the page cache,
// so a fleet file opened by N processes costs one copy of physical memory
// and clean pages are reclaimable under pressure (unlike the anonymous
// heap the row-struct path must hold).

#include <optional>
#include <span>
#include <string>

namespace ssdfail::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only.  nullopt on any failure — callers fall back to
  /// reading the file into a heap buffer.
  [[nodiscard]] static std::optional<MappedFile> map(const std::string& path);

  [[nodiscard]] std::span<const char> bytes() const noexcept {
    return {data_, size_};
  }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ssdfail::store
