#include "store/columnar.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "store/crc32.hpp"
#include "store/encoding.hpp"
#include "store/mmap_file.hpp"
#include "trace/io_metrics.hpp"

namespace ssdfail::store {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'D', 'F'};
constexpr char kTrailerMagic[8] = {'S', 'S', 'D', 'F', '2', 'F', 'T', 'R'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kTrailerBytes = 16;
/// Footer fixed part: 4 u64 totals + footer CRC + reserved u32.
constexpr std::size_t kFooterFixedBytes = 4 * 8 + 8;
constexpr std::size_t kDirEntryBytes = 32;
/// v3 appends to each directory entry: u64 n_swaps, u32 model_mask,
/// u32 reserved, then (i64 min, i64 max) per zone-mapped column.
constexpr std::size_t kDirEntryBytesV3 = kDirEntryBytes + 16 + kNumZoneColumns * 16;
constexpr std::size_t kDriveEntryBytes = 48;
constexpr std::size_t kChunkHeaderBytes = 24;
/// v3 per-column frame header: u32 encoding, u32 reserved, u64 payload bytes.
constexpr std::size_t kFrameHeaderBytes = 16;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("columnar store: " + what);
}

obs::Counter& chunks_read_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "store_chunks_read_total", {}, "columnar chunks parsed by readers");
  return c;
}
obs::Counter& crc_failures_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "store_crc_failures_total", {}, "columnar CRC mismatches (chunk or footer)");
  return c;
}
obs::Counter& mmap_fallback_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "store_mmap_fallback_total", {},
      "columnar opens that fell back to a heap buffer");
  return c;
}
obs::Counter& bytes_opened_counter(const char* backing) {
  return obs::MetricsRegistry::global().counter(
      "store_bytes_opened_total", {{"backing", backing}},
      "columnar file bytes made readable, by backing");
}

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

void pad8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

/// Bounds-checked reader over [begin, end) of the file image.  Every
/// overrun is a clean "truncated file" error, never an out-of-range read.
class Cursor {
 public:
  Cursor(std::span<const char> bytes, std::size_t begin, std::size_t end)
      : bytes_(bytes), pos_(begin), end_(end) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  /// Advance to the next 8-byte boundary (absolute file offset).
  void align8() {
    const std::size_t aligned = (pos_ + 7) & ~std::size_t{7};
    require(aligned - pos_);
    pos_ = aligned;
  }

  /// A zero-copy column of `n` elements, 8-byte aligned in the image.
  template <typename T>
  [[nodiscard]] std::span<const T> column(std::size_t n) {
    align8();
    if (n > (end_ - pos_) / sizeof(T)) fail("truncated file (column overruns chunk)");
    const T* base = reinterpret_cast<const T*>(bytes_.data() + pos_);
    pos_ += n * sizeof(T);
    return {base, n};
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const {
    if (n > end_ - pos_) fail("truncated file");
  }

  std::span<const char> bytes_;
  std::size_t pos_;
  std::size_t end_;
};

struct DirEntry {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  std::uint32_t n_drives = 0;
  std::uint64_t n_records = 0;
  ChunkZoneMap zone;  ///< serialized for v3 only
};

/// Widened value columns gathered for one v3 chunk: stats + frame emission
/// share the same pass.
ColumnStats stats_of(std::span<const std::uint64_t> values) {
  ColumnStats st;
  if (values.empty()) return st;
  st.min = std::numeric_limits<std::int64_t>::max();
  st.max = std::numeric_limits<std::int64_t>::min();
  for (const std::uint64_t v : values) {
    const auto s = static_cast<std::int64_t>(v);
    st.min = std::min(st.min, s);
    st.max = std::max(st.max, s);
  }
  return st;
}

}  // namespace

bool ChunkZoneMap::may_match(const ScanPredicate& pred) const noexcept {
  if (n_records == 0) return false;  // no rows, nothing to scan
  if (pred.model &&
      (model_mask & (1u << static_cast<std::uint32_t>(*pred.model))) == 0)
    return false;
  if (pred.device_class &&
      (model_mask & trace::class_model_mask(*pred.device_class)) == 0)
    return false;
  if (pred.wants_swaps() && n_swaps == 0) return false;
  if (stats_valid) {
    const ColumnStats& day = stats(ZoneColumn::kDay);
    if (pred.min_day && day.max < *pred.min_day) return false;
    if (pred.max_day && day.min > *pred.max_day) return false;
    // n_swaps > 0 here (checked above when a swap bound is set), so the
    // kSwapDay stats are meaningful.
    const ColumnStats& swap_day = stats(ZoneColumn::kSwapDay);
    if (pred.min_swap_day && swap_day.max < *pred.min_swap_day) return false;
    if (pred.max_swap_day && swap_day.min > *pred.max_swap_day) return false;
  }
  return true;
}

void write_columnar(std::ostream& out, const trace::FleetTrace& fleet,
                    const ColumnarWriteOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("store.write_columnar");
  obs::Span span(kSite);
  trace::detail::WriteByteCount byte_count(out, "columnar");

  const std::uint32_t chunk_drives = std::max<std::uint32_t>(1, options.chunk_drives);
  const std::uint32_t version = options.version;
  if (version != kColumnarVersion && version != kColumnarVersionV3)
    fail("unsupported write version " + std::to_string(version));

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put<std::uint32_t>(header, version);
  put<std::uint32_t>(header, chunk_drives);
  put<std::uint32_t>(header, 0);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::vector<DirEntry> directory;
  std::uint64_t offset = kHeaderBytes;
  std::uint64_t total_records = 0;
  std::uint64_t total_swaps = 0;

  std::string chunk;
  for (std::size_t first = 0; first < fleet.drives.size(); first += chunk_drives) {
    const std::size_t last = std::min<std::size_t>(first + chunk_drives, fleet.drives.size());
    const auto n_drives = static_cast<std::uint32_t>(last - first);
    std::uint64_t n_records = 0;
    std::uint64_t n_swaps = 0;
    for (std::size_t d = first; d < last; ++d) {
      n_records += fleet.drives[d].records.size();
      n_swaps += fleet.drives[d].swaps.size();
    }

    chunk.clear();
    put<std::uint32_t>(chunk, n_drives);
    put<std::uint32_t>(chunk, 0);
    put<std::uint64_t>(chunk, n_records);
    put<std::uint64_t>(chunk, n_swaps);

    ChunkZoneMap zone;
    zone.n_records = n_records;
    zone.n_swaps = n_swaps;

    std::uint64_t row = 0;
    std::uint64_t swap = 0;
    for (std::size_t d = first; d < last; ++d) {
      const trace::DriveHistory& drive = fleet.drives[d];
      zone.model_mask |= 1u << static_cast<std::uint32_t>(drive.model);
      put<std::uint8_t>(chunk, static_cast<std::uint8_t>(drive.model));
      put<std::uint8_t>(chunk, 0);
      put<std::uint8_t>(chunk, 0);
      put<std::uint8_t>(chunk, 0);
      put<std::uint32_t>(chunk, drive.drive_index);
      put<std::int32_t>(chunk, drive.deploy_day);
      put<std::uint32_t>(chunk, 0);
      put<std::uint64_t>(chunk, row);
      put<std::uint64_t>(chunk, drive.records.size());
      put<std::uint64_t>(chunk, swap);
      put<std::uint64_t>(chunk, drive.swaps.size());
      row += drive.records.size();
      swap += drive.swaps.size();
    }

    const auto for_each_record = [&](auto&& emit) {
      for (std::size_t d = first; d < last; ++d)
        for (const trace::DailyRecord& r : fleet.drives[d].records) emit(r);
    };
    if (version == kColumnarVersion) {
      pad8(chunk);
      for_each_record([&](const trace::DailyRecord& r) { put<std::int32_t>(chunk, r.day); });
      pad8(chunk);
      for_each_record([&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.reads); });
      pad8(chunk);
      for_each_record([&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.writes); });
      pad8(chunk);
      for_each_record([&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.erases); });
      pad8(chunk);
      for_each_record(
          [&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.pe_cycles); });
      pad8(chunk);
      for_each_record(
          [&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.bad_blocks); });
      pad8(chunk);
      for_each_record(
          [&](const trace::DailyRecord& r) { put<std::uint16_t>(chunk, r.factory_bad_blocks); });
      pad8(chunk);
      for_each_record([&](const trace::DailyRecord& r) {
        put<std::uint8_t>(chunk, static_cast<std::uint8_t>((r.read_only ? 1 : 0) |
                                                           (r.dead ? 2 : 0)));
      });
      for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e) {
        pad8(chunk);
        for_each_record(
            [&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.errors[e]); });
      }
      for (const trace::RecordCounterField& f : trace::kExtCounterFields) {
        pad8(chunk);
        for_each_record(
            [&](const trace::DailyRecord& r) { put<std::uint32_t>(chunk, r.*f.field); });
      }
      pad8(chunk);
      for (std::size_t d = first; d < last; ++d)
        for (const trace::SwapEvent& s : fleet.drives[d].swaps)
          put<std::int32_t>(chunk, s.day);
    } else {
      // v3: every column travels as an encoded frame — [align8] u32
      // encoding, u32 reserved, u64 payload bytes, payload — emitted in
      // ZoneColumn order, with the column's min/max recorded in the
      // directory zone map as a side effect of the same pass.
      std::vector<std::uint64_t> scratch;
      scratch.reserve(static_cast<std::size_t>(n_records));
      const auto emit_frame = [&](std::size_t elem_bytes, ZoneColumn zc) {
        zone.columns[static_cast<std::size_t>(zc)] = stats_of(scratch);
        zone.stats_valid = true;
        pad8(chunk);
        const EncodedColumn enc = encode_column(scratch, elem_bytes);
        put<std::uint32_t>(chunk, static_cast<std::uint32_t>(enc.encoding));
        put<std::uint32_t>(chunk, 0);
        put<std::uint64_t>(chunk, enc.payload.size());
        chunk.append(enc.payload.data(), enc.payload.size());
      };
      const auto gather = [&](auto&& get) {
        scratch.clear();
        for_each_record([&](const trace::DailyRecord& r) { scratch.push_back(get(r)); });
      };
      const auto widen_i32 = [](std::int32_t v) {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
      };
      gather([&](const trace::DailyRecord& r) { return widen_i32(r.day); });
      emit_frame(4, ZoneColumn::kDay);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.reads}; });
      emit_frame(4, ZoneColumn::kReads);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.writes}; });
      emit_frame(4, ZoneColumn::kWrites);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.erases}; });
      emit_frame(4, ZoneColumn::kErases);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.pe_cycles}; });
      emit_frame(4, ZoneColumn::kPeCycles);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.bad_blocks}; });
      emit_frame(4, ZoneColumn::kBadBlocks);
      gather([](const trace::DailyRecord& r) { return std::uint64_t{r.factory_bad_blocks}; });
      emit_frame(2, ZoneColumn::kFactoryBadBlocks);
      gather([](const trace::DailyRecord& r) {
        return std::uint64_t{static_cast<std::uint8_t>((r.read_only ? 1 : 0) |
                                                       (r.dead ? 2 : 0))};
      });
      emit_frame(1, ZoneColumn::kFlags);
      for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e) {
        gather([&](const trace::DailyRecord& r) { return std::uint64_t{r.errors[e]}; });
        emit_frame(4, static_cast<ZoneColumn>(
                          static_cast<std::size_t>(ZoneColumn::kError0) + e));
      }
      for (std::size_t x = 0; x < trace::kNumExtCounterFields; ++x) {
        const trace::RecordCounterField& f = trace::kExtCounterFields[x];
        gather([&](const trace::DailyRecord& r) { return std::uint64_t{r.*f.field}; });
        emit_frame(4, static_cast<ZoneColumn>(
                          static_cast<std::size_t>(ZoneColumn::kReallocatedSectors) + x));
      }
      scratch.clear();
      for (std::size_t d = first; d < last; ++d)
        for (const trace::SwapEvent& s : fleet.drives[d].swaps)
          scratch.push_back(widen_i32(s.day));
      emit_frame(4, ZoneColumn::kSwapDay);
    }
    // Trailing pad is part of the chunk's recorded length (and CRC), so
    // every byte between header and footer is covered by some checksum.
    pad8(chunk);

    DirEntry entry{offset, chunk.size(), crc32(0, chunk), n_drives, n_records, zone};
    directory.push_back(std::move(entry));
    out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    offset += chunk.size();
    total_records += n_records;
    total_swaps += n_swaps;
  }

  std::string footer;
  put<std::uint64_t>(footer, directory.size());
  put<std::uint64_t>(footer, fleet.drives.size());
  put<std::uint64_t>(footer, total_records);
  put<std::uint64_t>(footer, total_swaps);
  for (const DirEntry& e : directory) {
    put<std::uint64_t>(footer, e.offset);
    put<std::uint64_t>(footer, e.length);
    put<std::uint32_t>(footer, e.crc);
    put<std::uint32_t>(footer, e.n_drives);
    put<std::uint64_t>(footer, e.n_records);
    if (version == kColumnarVersionV3) {
      put<std::uint64_t>(footer, e.zone.n_swaps);
      put<std::uint32_t>(footer, e.zone.model_mask);
      put<std::uint32_t>(footer, 0);
      for (const ColumnStats& st : e.zone.columns) {
        put<std::int64_t>(footer, st.min);
        put<std::int64_t>(footer, st.max);
      }
    }
  }
  // The footer CRC also covers the 16-byte file header, so a flipped
  // chunk-size or version byte cannot slip through.
  put<std::uint32_t>(footer, crc32(crc32(0, header), footer));
  put<std::uint32_t>(footer, 0);
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));

  std::string trailer;
  put<std::uint64_t>(trailer, offset);
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
}

void write_columnar_file(const std::string& path, const trace::FleetTrace& fleet,
                         const ColumnarWriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot write " + path);
  write_columnar(out, fleet, options);
  out.flush();
  if (!out) fail("write failed for " + path);
}

trace::DailyRecord ChunkView::record(std::size_t row) const {
  trace::DailyRecord r;
  r.day = day[row];
  r.reads = reads[row];
  r.writes = writes[row];
  r.erases = erases[row];
  r.pe_cycles = pe_cycles[row];
  r.bad_blocks = bad_blocks[row];
  r.factory_bad_blocks = factory_bad_blocks[row];
  const std::uint8_t f = flags[row];
  r.read_only = (f & 1) != 0;
  r.dead = (f & 2) != 0;
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e) r.errors[e] = errors[e][row];
  r.reallocated_sectors = reallocated_sectors[row];
  r.seek_errors = seek_errors[row];
  r.media_wear = media_wear[row];
  r.throttle_events = throttle_events[row];
  return r;
}

void ChunkView::gather_drive(const DriveRef& ref, trace::DriveHistory& out) const {
  out.model = ref.model;
  out.drive_index = ref.drive_index;
  out.deploy_day = ref.deploy_day;
  out.truth.reset();
  out.records.resize(ref.row_count);
  trace::DailyRecord* recs = out.records.data();
  const std::size_t rb = ref.row_begin;
  // Column-at-a-time gather: each pass is a contiguous scan of one mapped
  // column, which is what makes rebuilding a drive cheaper than parsing
  // the equivalent v1 byte stream.
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].day = day[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].reads = reads[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].writes = writes[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].erases = erases[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].pe_cycles = pe_cycles[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) recs[i].bad_blocks = bad_blocks[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i)
    recs[i].factory_bad_blocks = factory_bad_blocks[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i) {
    const std::uint8_t f = flags[rb + i];
    recs[i].read_only = (f & 1) != 0;
    recs[i].dead = (f & 2) != 0;
  }
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    for (std::size_t i = 0; i < ref.row_count; ++i)
      recs[i].errors[e] = errors[e][rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i)
    recs[i].reallocated_sectors = reallocated_sectors[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i)
    recs[i].seek_errors = seek_errors[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i)
    recs[i].media_wear = media_wear[rb + i];
  for (std::size_t i = 0; i < ref.row_count; ++i)
    recs[i].throttle_events = throttle_events[rb + i];
  out.swaps.resize(ref.swap_count);
  for (std::size_t i = 0; i < ref.swap_count; ++i)
    out.swaps[i].day = swap_days[ref.swap_begin + i];
}

/// Per-chunk lazy decode state for v3 files.  Column frames stay untouched
/// in the backing bytes until the chunk is first accessed; decode fills the
/// typed vectors below and points the ChunkView spans at them.  once_flag
/// makes first-touch safe under chunk-parallel dataset builds.
struct LazyChunk {
  std::once_flag once;
  std::size_t frames_begin = 0;  ///< absolute offset of the first frame
  std::size_t frames_end = 0;    ///< chunk end (frames + trailing pad)
  std::uint64_t n_records = 0;
  std::uint64_t n_swaps = 0;

  std::vector<std::int32_t> day;
  std::vector<std::uint32_t> reads, writes, erases, pe_cycles, bad_blocks;
  std::vector<std::uint16_t> factory_bad_blocks;
  std::vector<std::uint8_t> flags;
  std::array<std::vector<std::uint32_t>, trace::kNumErrorTypes> errors;
  std::array<std::vector<std::uint32_t>, trace::kNumExtCounterFields> ext;
  std::vector<std::int32_t> swap_days;
};

struct ColumnarFleetView::Impl {
  MappedFile mapped;
  std::vector<char> heap;
  std::span<const char> bytes;
  bool mmap_backed = false;
  std::uint32_t version = kColumnarVersion;
  std::uint32_t chunk_drives = 0;
  std::size_t drive_count = 0;
  std::size_t total_records = 0;
  std::size_t total_swaps = 0;
  std::vector<std::vector<DriveRef>> refs;  ///< stable backing for ChunkView::drives
  std::vector<ChunkZoneMap> zones;
  /// v2: spans into `bytes`, complete after parse.  v3: drive refs set at
  /// parse, column spans filled by ensure_decoded (hence mutable — the view
  /// is logically const; decode only materializes what the file already
  /// states).
  mutable std::vector<ChunkView> chunks;
  std::vector<std::unique_ptr<LazyChunk>> lazy;  ///< empty for v2

  /// Parse and validate the whole image: header, trailer, footer (CRC over
  /// header + footer), chunk directory (contiguous coverage of
  /// [header, footer)), then each chunk (CRC, drive index, column spans for
  /// v2 / frame extents for v3).
  void parse(const OpenOptions& options);

  /// Decode chunk `index`'s column frames on first use (v3 only; no-op for
  /// v2).  Throws std::runtime_error on malformed frames.
  void ensure_decoded(std::size_t index) const;
};

void ColumnarFleetView::Impl::ensure_decoded(std::size_t index) const {
  if (lazy.empty()) return;
  LazyChunk& lc = *lazy[index];
  std::call_once(lc.once, [&] {
    Cursor cur(bytes, lc.frames_begin, lc.frames_end);
    std::vector<std::uint64_t> decoded;
    const auto read_frame = [&](std::size_t n, std::size_t elem_bytes,
                                bool is_signed) {
      cur.align8();
      const auto encoding = cur.get<std::uint32_t>();
      if (cur.get<std::uint32_t>() != 0) fail("nonzero reserved field in frame");
      const auto payload_bytes = cur.get<std::uint64_t>();
      if (payload_bytes > lc.frames_end - cur.pos())
        fail("truncated file (frame overruns chunk)");
      const std::span<const char> payload =
          bytes.subspan(cur.pos(), static_cast<std::size_t>(payload_bytes));
      cur.skip(static_cast<std::size_t>(payload_bytes));
      decode_column(static_cast<ColumnEncoding>(encoding), payload, n, elem_bytes,
                    is_signed, decoded);
    };
    const auto narrow = [&](auto& out) {
      using T = typename std::remove_reference_t<decltype(out)>::value_type;
      out.resize(decoded.size());
      for (std::size_t i = 0; i < decoded.size(); ++i)
        out[i] = static_cast<T>(decoded[i]);  // range-checked by decode_column
    };
    const auto n = static_cast<std::size_t>(lc.n_records);
    read_frame(n, 4, true);
    narrow(lc.day);
    read_frame(n, 4, false);
    narrow(lc.reads);
    read_frame(n, 4, false);
    narrow(lc.writes);
    read_frame(n, 4, false);
    narrow(lc.erases);
    read_frame(n, 4, false);
    narrow(lc.pe_cycles);
    read_frame(n, 4, false);
    narrow(lc.bad_blocks);
    read_frame(n, 2, false);
    narrow(lc.factory_bad_blocks);
    read_frame(n, 1, false);
    narrow(lc.flags);
    for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e) {
      read_frame(n, 4, false);
      narrow(lc.errors[e]);
    }
    for (std::size_t x = 0; x < trace::kNumExtCounterFields; ++x) {
      read_frame(n, 4, false);
      narrow(lc.ext[x]);
    }
    read_frame(static_cast<std::size_t>(lc.n_swaps), 4, true);
    narrow(lc.swap_days);
    cur.align8();
    if (cur.pos() != lc.frames_end) fail("chunk has trailing garbage");

    ChunkView& view = chunks[index];
    view.day = lc.day;
    view.reads = lc.reads;
    view.writes = lc.writes;
    view.erases = lc.erases;
    view.pe_cycles = lc.pe_cycles;
    view.bad_blocks = lc.bad_blocks;
    view.factory_bad_blocks = lc.factory_bad_blocks;
    view.flags = lc.flags;
    for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
      view.errors[e] = lc.errors[e];
    view.reallocated_sectors = lc.ext[0];
    view.seek_errors = lc.ext[1];
    view.media_wear = lc.ext[2];
    view.throttle_events = lc.ext[3];
    view.swap_days = lc.swap_days;
    chunks_read_counter().inc();
  });
}

void ColumnarFleetView::Impl::parse(const OpenOptions& options) {
  Impl& impl = *this;
  const std::span<const char> b = impl.bytes;
  if (b.size() < kHeaderBytes + kFooterFixedBytes + kTrailerBytes)
    fail("truncated file");
  if (std::memcmp(b.data(), kMagic, sizeof(kMagic)) != 0)
    fail("bad magic (not an ssdfail binary trace)");
  std::uint32_t file_version;
  std::memcpy(&file_version, b.data() + 4, sizeof(file_version));
  if (file_version != kColumnarVersion && file_version != kColumnarVersionV3)
    fail("unsupported format version " + std::to_string(file_version));
  impl.version = file_version;
  std::memcpy(&impl.chunk_drives, b.data() + 8, sizeof(impl.chunk_drives));

  if (std::memcmp(b.data() + b.size() - sizeof(kTrailerMagic), kTrailerMagic,
                  sizeof(kTrailerMagic)) != 0)
    fail("bad trailer magic (truncated or corrupt file)");
  std::uint64_t footer_offset;
  std::memcpy(&footer_offset, b.data() + b.size() - kTrailerBytes, sizeof(footer_offset));
  if (footer_offset < kHeaderBytes || footer_offset % 8 != 0 ||
      footer_offset + kFooterFixedBytes > b.size() - kTrailerBytes)
    fail("footer offset out of range");

  Cursor footer(b, static_cast<std::size_t>(footer_offset), b.size() - kTrailerBytes);
  const auto n_chunks = footer.get<std::uint64_t>();
  const std::size_t dir_entry_bytes =
      file_version == kColumnarVersionV3 ? kDirEntryBytesV3 : kDirEntryBytes;
  if (n_chunks > (1ull << 32) ||
      n_chunks * dir_entry_bytes > b.size() - kTrailerBytes - footer_offset)
    fail("implausible chunk count");
  const auto n_drives_total = footer.get<std::uint64_t>();
  const auto n_records_total = footer.get<std::uint64_t>();
  const auto n_swaps_total = footer.get<std::uint64_t>();

  std::vector<DirEntry> directory;
  directory.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n_chunks, 4096)));  // cap pre-allocation on corrupt counts
  for (std::uint64_t c = 0; c < n_chunks; ++c) {
    DirEntry e;
    e.offset = footer.get<std::uint64_t>();
    e.length = footer.get<std::uint64_t>();
    e.crc = footer.get<std::uint32_t>();
    e.n_drives = footer.get<std::uint32_t>();
    e.n_records = footer.get<std::uint64_t>();
    if (file_version == kColumnarVersionV3) {
      e.zone.n_swaps = footer.get<std::uint64_t>();
      e.zone.model_mask = footer.get<std::uint32_t>();
      if (footer.get<std::uint32_t>() != 0) fail("nonzero reserved field");
      for (ColumnStats& st : e.zone.columns) {
        st.min = footer.get<std::int64_t>();
        st.max = footer.get<std::int64_t>();
      }
      e.zone.stats_valid = true;
    }
    e.zone.n_records = e.n_records;
    directory.push_back(e);
  }
  const std::size_t crc_pos = footer.pos();
  const auto stored_footer_crc = footer.get<std::uint32_t>();
  // The reserved word trails the footer CRC, so the CRC cannot cover it;
  // requiring zero keeps every byte of the file corruption-detectable.
  if (footer.get<std::uint32_t>() != 0) fail("nonzero reserved field");
  if (footer.pos() != b.size() - kTrailerBytes) fail("footer size mismatch");
  const std::uint32_t computed_footer_crc =
      crc32(crc32(0, b.first(kHeaderBytes)),
            b.subspan(static_cast<std::size_t>(footer_offset),
                      crc_pos - static_cast<std::size_t>(footer_offset)));
  if (computed_footer_crc != stored_footer_crc) {
    crc_failures_counter().inc();
    fail("footer CRC mismatch");
  }

  std::uint64_t expected_offset = kHeaderBytes;
  for (std::size_t c = 0; c < directory.size(); ++c) {
    const DirEntry& e = directory[c];
    if (e.offset != expected_offset) fail("chunk directory gap");
    if (e.length < kChunkHeaderBytes || e.length % 8 != 0) fail("bad chunk length");
    if (e.offset + e.length > footer_offset) fail("chunk out of range");
    expected_offset = e.offset + e.length;

    const auto begin = static_cast<std::size_t>(e.offset);
    const auto end = static_cast<std::size_t>(e.offset + e.length);
    if (options.verify_crc && crc32(0, b.subspan(begin, end - begin)) != e.crc) {
      crc_failures_counter().inc();
      fail("chunk " + std::to_string(c) + " CRC mismatch");
    }

    Cursor cur(b, begin, end);
    const auto n_drives = cur.get<std::uint32_t>();
    (void)cur.get<std::uint32_t>();  // reserved
    const auto n_records = cur.get<std::uint64_t>();
    const auto n_swaps = cur.get<std::uint64_t>();
    if (n_drives != e.n_drives || n_records != e.n_records)
      fail("chunk header disagrees with directory");
    if (n_drives > (1u << 24) || n_records > (1ull << 32) || n_swaps > (1ull << 28))
      fail("implausible chunk sizes");
    if ((end - cur.pos()) / kDriveEntryBytes < n_drives)
      fail("truncated file (drive index overruns chunk)");

    std::vector<DriveRef> drive_refs;
    drive_refs.reserve(n_drives);
    std::uint64_t next_row = 0;
    std::uint64_t next_swap = 0;
    for (std::uint32_t d = 0; d < n_drives; ++d) {
      DriveRef ref;
      const auto model = cur.get<std::uint8_t>();
      if (model >= trace::kNumModels) fail("bad model id in drive index");
      ref.model = static_cast<trace::DriveModel>(model);
      cur.skip(3);
      ref.drive_index = cur.get<std::uint32_t>();
      ref.deploy_day = cur.get<std::int32_t>();
      (void)cur.get<std::uint32_t>();  // reserved
      const auto row_begin = cur.get<std::uint64_t>();
      const auto row_count = cur.get<std::uint64_t>();
      const auto swap_begin = cur.get<std::uint64_t>();
      const auto swap_count = cur.get<std::uint64_t>();
      if (row_begin != next_row || swap_begin != next_swap)
        fail("drive index inconsistent");
      next_row += row_count;
      next_swap += swap_count;
      ref.row_begin = static_cast<std::size_t>(row_begin);
      ref.row_count = static_cast<std::size_t>(row_count);
      ref.swap_begin = static_cast<std::size_t>(swap_begin);
      ref.swap_count = static_cast<std::size_t>(swap_count);
      drive_refs.push_back(ref);
    }
    if (next_row != n_records || next_swap != n_swaps) fail("drive index inconsistent");

    ChunkZoneMap zone = e.zone;
    zone.n_swaps = n_swaps;  // v2 entries lack the swap count; header has it
    if (file_version == kColumnarVersionV3 && e.zone.n_swaps != n_swaps)
      fail("chunk header disagrees with directory");
    std::uint32_t ref_mask = 0;
    for (const DriveRef& ref : drive_refs)
      ref_mask |= 1u << static_cast<std::uint32_t>(ref.model);
    if (file_version == kColumnarVersionV3) {
      if (zone.model_mask != ref_mask) fail("zone map disagrees with drive index");
    } else {
      zone.model_mask = ref_mask;
    }

    ChunkView view;
    const auto n = static_cast<std::size_t>(n_records);
    if (file_version == kColumnarVersion) {
      view.day = cur.column<std::int32_t>(n);
      view.reads = cur.column<std::uint32_t>(n);
      view.writes = cur.column<std::uint32_t>(n);
      view.erases = cur.column<std::uint32_t>(n);
      view.pe_cycles = cur.column<std::uint32_t>(n);
      view.bad_blocks = cur.column<std::uint32_t>(n);
      view.factory_bad_blocks = cur.column<std::uint16_t>(n);
      view.flags = cur.column<std::uint8_t>(n);
      for (std::size_t err = 0; err < trace::kNumErrorTypes; ++err)
        view.errors[err] = cur.column<std::uint32_t>(n);
      view.reallocated_sectors = cur.column<std::uint32_t>(n);
      view.seek_errors = cur.column<std::uint32_t>(n);
      view.media_wear = cur.column<std::uint32_t>(n);
      view.throttle_events = cur.column<std::uint32_t>(n);
      view.swap_days = cur.column<std::int32_t>(static_cast<std::size_t>(n_swaps));
      if (end - cur.pos() >= 8) fail("chunk has trailing garbage");
      chunks_read_counter().inc();
    } else {
      // Bound decode amplification: a legitimate frame stores at minimum
      // one byte per 128 values (width-0 blocks), so counts beyond
      // 128 bytes-per-byte are structurally impossible.
      if (n_records > 128 * e.length || n_swaps > 128 * e.length)
        fail("implausible chunk sizes");
      auto lc = std::make_unique<LazyChunk>();
      lc->frames_begin = cur.pos();
      lc->frames_end = end;
      lc->n_records = n_records;
      lc->n_swaps = n_swaps;
      impl.lazy.push_back(std::move(lc));
      // Column spans stay empty until ensure_decoded fills them.
    }

    impl.refs.push_back(std::move(drive_refs));
    view.drives = {impl.refs.back().data(), impl.refs.back().size()};
    impl.zones.push_back(zone);
    impl.chunks.push_back(view);
    impl.drive_count += n_drives;
    impl.total_records += n;
    impl.total_swaps += static_cast<std::size_t>(n_swaps);
  }
  if (expected_offset != footer_offset) fail("chunk directory gap");
  if (impl.drive_count != n_drives_total || impl.total_records != n_records_total ||
      impl.total_swaps != n_swaps_total)
    fail("footer totals disagree with chunks");
}

ColumnarFleetView ColumnarFleetView::open(const std::string& path,
                                          const OpenOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("store.open_view");
  obs::Span span(kSite);
  auto impl = std::make_shared<Impl>();
  if (options.allow_mmap) {
    if (auto mapped = MappedFile::map(path)) {
      impl->mapped = std::move(*mapped);
      impl->bytes = impl->mapped.bytes();
      impl->mmap_backed = true;
    } else {
      mmap_fallback_counter().inc();
    }
  }
  if (!impl->mmap_backed) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail("cannot open " + path);
    const std::streamoff size = in.tellg();
    in.seekg(0);
    impl->heap.resize(static_cast<std::size_t>(std::max<std::streamoff>(size, 0)));
    if (!impl->heap.empty() &&
        !in.read(impl->heap.data(), static_cast<std::streamsize>(impl->heap.size())))
      fail("cannot read " + path);
    impl->bytes = {impl->heap.data(), impl->heap.size()};
  }
  bytes_opened_counter(impl->mmap_backed ? "mmap" : "heap").inc(impl->bytes.size());
  impl->parse(options);
  return ColumnarFleetView(std::move(impl));
}

ColumnarFleetView ColumnarFleetView::from_buffer(std::vector<char> bytes,
                                                 const OpenOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("store.open_view");
  obs::Span span(kSite);
  auto impl = std::make_shared<Impl>();
  impl->heap = std::move(bytes);
  impl->bytes = {impl->heap.data(), impl->heap.size()};
  bytes_opened_counter("heap").inc(impl->bytes.size());
  impl->parse(options);
  return ColumnarFleetView(std::move(impl));
}

std::size_t ColumnarFleetView::chunk_count() const noexcept { return impl_->chunks.size(); }

const ChunkView& ColumnarFleetView::chunk(std::size_t index) const {
  const ChunkView& view = impl_->chunks.at(index);
  impl_->ensure_decoded(index);
  return view;
}

const ChunkZoneMap& ColumnarFleetView::zone_map(std::size_t index) const {
  return impl_->zones.at(index);
}

std::uint32_t ColumnarFleetView::version() const noexcept { return impl_->version; }

std::size_t ColumnarFleetView::drive_count() const noexcept { return impl_->drive_count; }
std::size_t ColumnarFleetView::total_records() const noexcept {
  return impl_->total_records;
}
std::size_t ColumnarFleetView::total_swaps() const noexcept { return impl_->total_swaps; }
std::uint32_t ColumnarFleetView::chunk_drives() const noexcept {
  return impl_->chunk_drives;
}
bool ColumnarFleetView::mmap_backed() const noexcept { return impl_->mmap_backed; }

trace::FleetTrace materialize(const ColumnarFleetView& view) {
  static const obs::SiteId kSite = obs::intern_site("store.materialize");
  obs::Span span(kSite);
  trace::FleetTrace fleet;
  fleet.drives.reserve(view.drive_count());
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const ChunkView& chunk = view.chunk(c);
    for (const DriveRef& ref : chunk.drives) {
      trace::DriveHistory drive;
      chunk.gather_drive(ref, drive);
      fleet.drives.push_back(std::move(drive));
    }
  }
  return fleet;
}

}  // namespace ssdfail::store
