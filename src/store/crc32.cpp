#include "store/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace ssdfail::store {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// Slicing-by-16 (Intel's table-driven method): table[0] is the classic
// byte-at-a-time table; table[k][b] extends a byte b by k additional zero
// bytes.  Sixteen lookups consume sixteen input bytes per step, split
// into two independent 8-byte halves so the loads overlap instead of
// chaining — whole-file verification at open must stay cheap relative to
// the dataset build it guards (bench_perf_dataset BM_StageOpenColumnar).
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 16; ++t)
    for (std::uint32_t i = 0; i < 256; ++i)
      tables[t][i] = tables[0][tables[t - 1][i] & 0xFFu] ^ (tables[t - 1][i] >> 8);
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 16> kTables = make_tables();

inline std::uint32_t step_byte(std::uint32_t c, char byte) noexcept {
  return kTables[0][(c ^ static_cast<std::uint8_t>(byte)) & 0xFFu] ^ (c >> 8);
}

}  // namespace

std::uint32_t crc32(std::uint32_t crc, std::span<const char> bytes) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();

  // Align to 8 so the wide loop's memcpy loads are aligned on strict
  // targets; correctness does not depend on alignment.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = step_byte(c, *p++);
    --n;
  }
  // The wide loop folds the running CRC into the low word of the 64-bit
  // load, which is the FIRST four input bytes only on little-endian; other
  // byte orders take the (correct, slower) tail loop for everything.
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= c;
    c = kTables[7][chunk & 0xFFu] ^ kTables[6][(chunk >> 8) & 0xFFu] ^
        kTables[5][(chunk >> 16) & 0xFFu] ^ kTables[4][(chunk >> 24) & 0xFFu] ^
        kTables[3][(chunk >> 32) & 0xFFu] ^ kTables[2][(chunk >> 40) & 0xFFu] ^
        kTables[1][(chunk >> 48) & 0xFFu] ^ kTables[0][(chunk >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = step_byte(c, *p++);
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ssdfail::store
