#pragma once

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-chunk and
// footer checksum of the SSDF2 columnar store (docs/DATA_FORMAT.md).
//
// zlib-style chaining: crc32(crc32(0, a), b) == crc32(0, a ++ b), so the
// writer can checksum header + footer without concatenating buffers.
// CRC-32 detects every single-bit error and every burst shorter than 32
// bits, which is exactly the tripwire the fuzz suite leans on
// (tests/trace/test_binary_io_fuzz.cpp).

#include <cstdint>
#include <span>

namespace ssdfail::store {

/// Continue a CRC-32 over `bytes`; pass the previous return value to
/// chain, or 0 to start.
[[nodiscard]] std::uint32_t crc32(std::uint32_t crc, std::span<const char> bytes) noexcept;

}  // namespace ssdfail::store
