#pragma once

// Multi-file sharded SSDF2 layout (docs/DATA_FORMAT.md §Shard manifest).
//
// One SSDF2 file per shard plus a small binary manifest ("manifest.ssdm")
// naming the shards in scan order.  Shards are ordinary standalone SSDF2
// files — every single-file tool (convert, inspect, fuzzers) works on a
// shard unchanged — and the manifest is the unit of atomic growth: the
// WAL→v3 compactor (daemon/compactor.hpp) writes a new shard file, then
// rewrites the manifest via rename, so readers see either the old or the
// new shard set, never a partial one.
//
// Scan order is manifest order; dataset builds over a sharded store are
// bit-identical to a single-file build of the concatenated fleet because
// every per-row decision upstream is keyed by (seed, drive uid, day), not
// by file position.

#include <cstdint>
#include <string>
#include <vector>

#include "store/columnar.hpp"

namespace ssdfail::store {

/// Manifest format version.
inline constexpr std::uint32_t kManifestVersion = 1;

/// Manifest file name within a sharded store directory.
inline constexpr const char* kManifestName = "manifest.ssdm";

struct ShardInfo {
  std::string file;  ///< shard file name, relative to the manifest directory
  std::uint64_t bytes = 0;      ///< shard file size (sanity-checked on open)
  std::uint64_t n_drives = 0;
  std::uint64_t n_records = 0;
  std::uint64_t n_swaps = 0;
};

struct ShardManifest {
  std::vector<ShardInfo> shards;
};

/// Serialize / parse the manifest image ("SSDM" magic, CRC-protected).
/// Throws std::runtime_error on any malformed input.
[[nodiscard]] std::string encode_manifest(const ShardManifest& manifest);
[[nodiscard]] ShardManifest decode_manifest(const std::string& bytes);

/// Atomically (write-temp + rename) replace `dir`/manifest.ssdm.
void write_manifest(const std::string& dir, const ShardManifest& manifest);

/// Read `dir`/manifest.ssdm.  Throws if missing or corrupt.
[[nodiscard]] ShardManifest read_manifest(const std::string& dir);

struct ShardedWriteOptions {
  ColumnarWriteOptions store{};             ///< per-shard write options
  std::uint32_t drives_per_shard = 65536;   ///< split threshold (>= 1)
};

/// Write `fleet` into `dir` as numbered shard files plus a manifest.
/// Creates `dir` if needed; replaces any manifest already there.
void write_sharded(const std::string& dir, const trace::FleetTrace& fleet,
                   const ShardedWriteOptions& options = {});

/// Read-only view over every shard named by a manifest, opened eagerly so
/// a corrupt shard fails the open, not a mid-scan access.
class ShardedFleetView {
 public:
  [[nodiscard]] static ShardedFleetView open(const std::string& dir,
                                             const OpenOptions& options = {});

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] const ColumnarFleetView& shard(std::size_t index) const {
    return shards_.at(index);
  }

  [[nodiscard]] std::size_t drive_count() const noexcept { return drive_count_; }
  [[nodiscard]] std::size_t total_records() const noexcept { return total_records_; }
  [[nodiscard]] std::size_t total_swaps() const noexcept { return total_swaps_; }

 private:
  std::vector<ColumnarFleetView> shards_;
  std::size_t drive_count_ = 0;
  std::size_t total_records_ = 0;
  std::size_t total_swaps_ = 0;
};

/// Materialize every shard back into one fleet, manifest order.
[[nodiscard]] trace::FleetTrace materialize(const ShardedFleetView& view);

}  // namespace ssdfail::store
