#include "store/mmap_file.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SSDFAIL_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SSDFAIL_HAS_MMAP 0
#endif

namespace ssdfail::store {

MappedFile::~MappedFile() {
#if SSDFAIL_HAS_MMAP
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    MappedFile tmp(std::move(other));
    std::swap(data_, tmp.data_);
    std::swap(size_, tmp.size_);
  }
  return *this;
}

std::optional<MappedFile> MappedFile::map(const std::string& path) {
#if SSDFAIL_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
#if defined(MAP_POPULATE)
  // Prefault the whole read-only mapping: stores are opened to be read
  // end to end (CRC verify touches every chunk anyway), and one bulk
  // populate is much cheaper than thousands of per-page soft faults.
  constexpr int kMapFlags = MAP_PRIVATE | MAP_POPULATE;
#else
  constexpr int kMapFlags = MAP_PRIVATE;
#endif
  void* base = ::mmap(nullptr, size, PROT_READ, kMapFlags, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) return std::nullopt;
  MappedFile file;
  file.data_ = static_cast<const char*>(base);
  file.size_ = size;
  return file;
#else
  (void)path;
  return std::nullopt;
#endif
}

}  // namespace ssdfail::store
