#include "store/encoding.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace ssdfail::store {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("column codec: " + what);
}

[[nodiscard]] std::uint64_t zigzag_encode(std::int64_t d) noexcept {
  return (static_cast<std::uint64_t>(d) << 1) ^ static_cast<std::uint64_t>(d >> 63);
}

[[nodiscard]] std::uint64_t zigzag_decode(std::uint64_t z) noexcept {
  return (z >> 1) ^ (0ull - (z & 1));
}

[[nodiscard]] unsigned bit_width_of(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}

void append_bytes(std::vector<char>& out, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  out.insert(out.end(), c, c + n);
}

/// Pack one block of values at `width` bits each, LSB-first within each
/// byte, values packed back to back (value i occupies bit range
/// [i*width, (i+1)*width) of the block's bit stream).
void pack_block(std::vector<char>& out, std::span<const std::uint64_t> block,
                unsigned width) {
  out.push_back(static_cast<char>(width));
  if (width == 0) return;
  const std::size_t first = out.size();
  out.resize(first + (block.size() * width + 7) / 8, '\0');
  std::size_t bitpos = 0;
  for (const std::uint64_t v : block) {
    unsigned put = 0;
    while (put < width) {
      const std::size_t byte = first + (bitpos >> 3);
      const unsigned offset = bitpos & 7u;
      const unsigned take = std::min(8u - offset, width - put);
      const auto chunk = static_cast<std::uint8_t>(
          (v >> put) & ((std::uint64_t{1} << take) - 1));
      out[byte] = static_cast<char>(static_cast<std::uint8_t>(out[byte]) |
                                    (chunk << offset));
      put += take;
      bitpos += take;
    }
  }
}

/// Emit all of `values` as width-per-block bitpacked payload.
std::vector<char> bitpack_payload(std::span<const std::uint64_t> values) {
  std::vector<char> out;
  for (std::size_t start = 0; start < values.size(); start += kPackBlock) {
    const std::size_t count = std::min(kPackBlock, values.size() - start);
    const auto block = values.subspan(start, count);
    unsigned width = 0;
    for (const std::uint64_t v : block) width = std::max(width, bit_width_of(v));
    pack_block(out, block, width);
  }
  return out;
}

/// Bounds-checked byte reader over a payload span.
class PayloadCursor {
 public:
  explicit PayloadCursor(std::span<const char> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  [[nodiscard]] std::uint64_t little(std::size_t n_bytes) {
    const char* p = take(n_bytes);
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < n_bytes; ++b)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[b])) << (8 * b);
    return v;
  }

  [[nodiscard]] const char* take(std::size_t n) {
    if (n > bytes_.size() - pos_) fail("truncated column payload");
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const char> bytes_;
  std::size_t pos_ = 0;
};

/// Unpack one block of `count` width-bit values appended to `out` — the
/// exact inverse of pack_block's bit-position indexing.
void unpack_block(PayloadCursor& cur, std::size_t count,
                  std::vector<std::uint64_t>& out) {
  const unsigned width = cur.u8();
  if (width > 64) fail("bitpack width > 64");
  if (width == 0) {
    out.insert(out.end(), count, 0);
    return;
  }
  const std::size_t payload_bytes = (count * width + 7) / 8;
  const char* p = cur.take(payload_bytes);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    unsigned got = 0;
    while (got < width) {
      const auto byte = static_cast<std::uint8_t>(p[bitpos >> 3]);
      const unsigned offset = bitpos & 7u;
      const unsigned take = std::min(8u - offset, width - got);
      v |= static_cast<std::uint64_t>((byte >> offset) &
                                      ((std::uint32_t{1} << take) - 1))
           << got;
      got += take;
      bitpos += take;
    }
    out.push_back(v);
  }
}

void unpack_all(std::span<const char> payload, std::size_t n,
                std::vector<std::uint64_t>& out) {
  PayloadCursor cur(payload);
  for (std::size_t start = 0; start < n; start += kPackBlock)
    unpack_block(cur, std::min(kPackBlock, n - start), out);
  if (!cur.done()) fail("trailing bytes after bitpack payload");
}

void range_check(std::uint64_t v, std::size_t elem_bytes, bool is_signed) {
  if (is_signed) {
    const auto s = static_cast<std::int64_t>(v);
    const std::int64_t lo = -(std::int64_t{1} << (8 * elem_bytes - 1));
    const std::int64_t hi = (std::int64_t{1} << (8 * elem_bytes - 1)) - 1;
    if (s < lo || s > hi) fail("decoded value out of range for column type");
  } else {
    const std::uint64_t hi = elem_bytes >= 8
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << (8 * elem_bytes)) - 1;
    if (v > hi) fail("decoded value out of range for column type");
  }
}

std::vector<char> raw_payload(std::span<const std::uint64_t> values,
                              std::size_t elem_bytes) {
  std::vector<char> out;
  out.reserve(values.size() * elem_bytes);
  for (const std::uint64_t v : values)
    for (std::size_t b = 0; b < elem_bytes; ++b)
      out.push_back(static_cast<char>(v >> (8 * b)));
  return out;
}

std::vector<char> rle_payload(std::span<const std::uint64_t> values,
                              std::size_t elem_bytes) {
  std::vector<char> out;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i] &&
           run < std::numeric_limits<std::uint32_t>::max())
      ++run;
    const auto run32 = static_cast<std::uint32_t>(run);
    append_bytes(out, &run32, sizeof(run32));
    for (std::size_t b = 0; b < elem_bytes; ++b)
      out.push_back(static_cast<char>(values[i] >> (8 * b)));
    i += run;
  }
  return out;
}

std::vector<char> delta_payload(std::span<const std::uint64_t> values) {
  std::vector<std::uint64_t> deltas;
  deltas.reserve(values.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t v : values) {
    deltas.push_back(zigzag_encode(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
  return bitpack_payload(deltas);
}

}  // namespace

EncodedColumn encode_column(std::span<const std::uint64_t> values,
                            std::size_t elem_bytes) {
  EncodedColumn best;
  best.encoding = ColumnEncoding::kRaw;
  best.payload = raw_payload(values, elem_bytes);

  const auto consider = [&best](ColumnEncoding encoding, std::vector<char>&& payload) {
    if (payload.size() < best.payload.size()) {
      best.encoding = encoding;
      best.payload = std::move(payload);
    }
  };
  consider(ColumnEncoding::kDeltaPack, delta_payload(values));
  consider(ColumnEncoding::kBitPack, bitpack_payload(values));
  consider(ColumnEncoding::kRle, rle_payload(values, elem_bytes));
  return best;
}

void decode_column(ColumnEncoding encoding, std::span<const char> payload,
                   std::size_t n, std::size_t elem_bytes, bool is_signed,
                   std::vector<std::uint64_t>& out) {
  out.clear();
  out.reserve(n);
  switch (encoding) {
    case ColumnEncoding::kRaw: {
      if (payload.size() != n * elem_bytes) fail("raw payload size mismatch");
      PayloadCursor cur(payload);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t v = cur.little(elem_bytes);
        if (is_signed && elem_bytes < 8 &&
            (v >> (8 * elem_bytes - 1)) & 1)  // sign-extend the stored width
          v |= ~((std::uint64_t{1} << (8 * elem_bytes)) - 1);
        out.push_back(v);
      }
      break;
    }
    case ColumnEncoding::kBitPack: {
      unpack_all(payload, n, out);
      for (const std::uint64_t v : out) range_check(v, elem_bytes, is_signed);
      return;
    }
    case ColumnEncoding::kDeltaPack: {
      std::vector<std::uint64_t> deltas;
      deltas.reserve(n);
      unpack_all(payload, n, deltas);
      std::uint64_t acc = 0;  // wrapping: corrupt input must not hit signed UB
      for (const std::uint64_t z : deltas) {
        acc += zigzag_decode(z);
        range_check(acc, elem_bytes, is_signed);
        out.push_back(acc);
      }
      return;
    }
    case ColumnEncoding::kRle: {
      PayloadCursor cur(payload);
      while (out.size() < n) {
        const auto run = static_cast<std::uint32_t>(cur.little(4));
        if (run == 0 || run > n - out.size()) fail("rle run overruns column");
        std::uint64_t v = cur.little(elem_bytes);
        if (is_signed && elem_bytes < 8 && (v >> (8 * elem_bytes - 1)) & 1)
          v |= ~((std::uint64_t{1} << (8 * elem_bytes)) - 1);
        out.insert(out.end(), run, v);
      }
      if (!cur.done()) fail("trailing bytes after rle payload");
      break;
    }
    default:
      fail("unknown column encoding " +
           std::to_string(static_cast<std::uint32_t>(encoding)));
  }
  if (out.size() != n) fail("decoded element count mismatch");
}

const char* encoding_name(ColumnEncoding e) noexcept {
  switch (e) {
    case ColumnEncoding::kRaw: return "raw";
    case ColumnEncoding::kDeltaPack: return "delta";
    case ColumnEncoding::kBitPack: return "bitpack";
    case ColumnEncoding::kRle: return "rle";
  }
  return "unknown";
}

}  // namespace ssdfail::store
