#pragma once

// SSDF2 v3 lightweight column codecs (docs/DATA_FORMAT.md §v3).
//
// Four encodings, no external dependencies, all operating on a column of
// fixed-width little-endian integers widened to u64:
//
//   kRaw          — the v2 layout: n elements, sizeof(T) bytes each.
//   kDeltaPack    — zigzag(v[i] - v[i-1]) (v[-1] = 0), block-bitpacked.
//                   The win for monotone cumulative columns (day,
//                   pe_cycles, bad_blocks, error totals): deltas are tiny
//                   and constant runs pack to width 0.
//   kBitPack      — values block-bitpacked directly (width = bits of the
//                   block max).  The win for noisy daily counters whose
//                   values are far below the type's range.
//   kRle          — (u32 run_length, value) pairs.  The win for
//                   status/flag columns that hold one value for weeks.
//
// Block bitpacking (kDeltaPack / kBitPack payloads): values are split
// into blocks of 128; each block stores `u8 width` (0..64) followed by
// ceil(count * width / 8) bytes, bits packed LSB-first.  A width-0 block
// is one byte for 128 zero values.
//
// The writer measures every applicable encoding and keeps the smallest
// (encode_column); readers dispatch on the stored encoding id
// (decode_column), bounds-check every read, and verify decoded values fit
// the destination type — a corrupt payload raises std::runtime_error,
// never undefined behavior (the chunk CRC catches corruption first in
// the default configuration; these checks hold even with verification
// disabled).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ssdfail::store {

enum class ColumnEncoding : std::uint32_t {
  kRaw = 0,
  kDeltaPack = 1,
  kBitPack = 2,
  kRle = 3,
};

/// Values per bitpacked block (kDeltaPack / kBitPack).
inline constexpr std::size_t kPackBlock = 128;

/// One encoded column: the chosen encoding plus its payload bytes.
struct EncodedColumn {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  std::vector<char> payload;
};

/// Encode `values` (elements already widened to u64; `elem_bytes` is the
/// on-disk element size: 1, 2, or 4) with every applicable encoding and
/// return the smallest result.  Signed columns (i32 day/swap_day) must be
/// widened with sign extension; the codec is value-preserving either way.
[[nodiscard]] EncodedColumn encode_column(std::span<const std::uint64_t> values,
                                          std::size_t elem_bytes);

/// Decode `payload` into exactly `n` values.  Throws std::runtime_error
/// on any structural defect: truncated payload, width > 64, run lengths
/// not summing to n, or a decoded value outside the `elem_bytes`-sized
/// destination (signed when `is_signed`, matching the widening convention
/// of encode_column).  Trailing unread payload bytes are also an error.
void decode_column(ColumnEncoding encoding, std::span<const char> payload,
                   std::size_t n, std::size_t elem_bytes, bool is_signed,
                   std::vector<std::uint64_t>& out);

/// Human-readable encoding name (bench/CLI reporting).
[[nodiscard]] const char* encoding_name(ColumnEncoding e) noexcept;

}  // namespace ssdfail::store
