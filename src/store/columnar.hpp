#pragma once

// SSDF2: the chunked columnar fleet store (docs/DATA_FORMAT.md).
//
// The v1 binary trace (trace/binary_io) is a row format: one DailyRecord
// struct after another, so dataset construction — the hot path feeding
// every prediction experiment — re-parses and re-materializes the whole
// fleet as row-struct vectors on every build.  SSDF2 lays each DailyRecord
// field out as a contiguous per-drive column inside fixed-size drive
// chunks, with a per-chunk drive index, a per-chunk CRC32, and a footer
// directory, so a reader can
//
//   - memory-map the file and expose every column as a zero-copy
//     std::span (ColumnarFleetView; heap-backed fallback when mmap is
//     unavailable),
//   - walk chunks independently (chunk-parallel dataset builds in
//     core/dataset_builder), and
//   - detect any single-bit corruption via CRC (per chunk, plus a footer
//     CRC that also covers the file header).
//
// Same observable-only contract as v1: ground truth is never serialized.
// Every field is little-endian; columns are 8-byte aligned so the mapped
// spans are naturally aligned for their element type.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/drive_history.hpp"

namespace ssdfail::store {

/// SSDF2 shares the "SSDF" magic with v1; the version field discriminates.
inline constexpr std::uint32_t kColumnarVersion = 2;

/// Default drives per chunk: large enough to amortize per-chunk overhead,
/// small enough that chunk-parallel builds load-balance.
inline constexpr std::uint32_t kDefaultChunkDrives = 256;

struct ColumnarWriteOptions {
  std::uint32_t chunk_drives = kDefaultChunkDrives;  ///< drives per chunk (>= 1)
};

/// Write the fleet as an SSDF2 columnar file to a binary stream.
void write_columnar(std::ostream& out, const trace::FleetTrace& fleet,
                    const ColumnarWriteOptions& options = {});

/// Write an SSDF2 file at `path` (truncates).  Throws std::runtime_error
/// on I/O failure.
void write_columnar_file(const std::string& path, const trace::FleetTrace& fleet,
                         const ColumnarWriteOptions& options = {});

/// One drive's slice of a chunk: which column rows and swap slots are its.
struct DriveRef {
  trace::DriveModel model = trace::DriveModel::MlcA;
  std::uint32_t drive_index = 0;
  std::int32_t deploy_day = 0;
  std::size_t row_begin = 0;   ///< first row of this drive within the chunk
  std::size_t row_count = 0;
  std::size_t swap_begin = 0;  ///< first swap slot within the chunk
  std::size_t swap_count = 0;

  [[nodiscard]] std::uint64_t uid() const noexcept {
    return (static_cast<std::uint64_t>(model) << 32) | drive_index;
  }
};

/// Zero-copy view of one chunk: per-field columns spanning every record of
/// every drive in the chunk (drive-major, day-ordered within a drive).
struct ChunkView {
  std::span<const DriveRef> drives;

  std::span<const std::int32_t> day;
  std::span<const std::uint32_t> reads;
  std::span<const std::uint32_t> writes;
  std::span<const std::uint32_t> erases;
  std::span<const std::uint32_t> pe_cycles;
  std::span<const std::uint32_t> bad_blocks;
  std::span<const std::uint16_t> factory_bad_blocks;
  std::span<const std::uint8_t> flags;  ///< bit 0: read_only, bit 1: dead
  std::array<std::span<const std::uint32_t>, trace::kNumErrorTypes> errors;
  std::span<const std::int32_t> swap_days;

  /// Gather one row back into a DailyRecord struct.
  [[nodiscard]] trace::DailyRecord record(std::size_t row) const;

  /// Rebuild `out` as the full history of `ref` (records + swaps).  The
  /// output's vectors are reused across calls — the chunk-parallel dataset
  /// build gathers one drive at a time into a per-worker scratch history
  /// instead of materializing the fleet.
  void gather_drive(const DriveRef& ref, trace::DriveHistory& out) const;
};

struct OpenOptions {
  /// Verify every chunk CRC at open (one sequential pass).  Disable only
  /// for trusted files where open latency matters; corruption then
  /// surfaces as silently wrong data, exactly what CRCs exist to prevent.
  bool verify_crc = true;
  /// Permit the mmap backing; when false (or when mapping fails) the file
  /// is read into a heap buffer instead (counted by
  /// store_mmap_fallback_total).
  bool allow_mmap = true;
};

/// Read-only view of an SSDF2 file.  Cheap to copy (shared backing).
/// Column spans stay valid for the lifetime of any copy of the view.
class ColumnarFleetView {
 public:
  /// Open `path`, mmap-backed where possible, heap-backed otherwise.
  /// Throws std::runtime_error on malformed, truncated, or corrupt files.
  [[nodiscard]] static ColumnarFleetView open(const std::string& path,
                                              const OpenOptions& options = {});

  /// Parse an in-memory SSDF2 image (always heap-backed).
  [[nodiscard]] static ColumnarFleetView from_buffer(std::vector<char> bytes,
                                                     const OpenOptions& options = {});

  [[nodiscard]] std::size_t chunk_count() const noexcept;
  [[nodiscard]] const ChunkView& chunk(std::size_t index) const;

  [[nodiscard]] std::size_t drive_count() const noexcept;
  [[nodiscard]] std::size_t total_records() const noexcept;
  [[nodiscard]] std::size_t total_swaps() const noexcept;

  /// The writer's drives-per-chunk knob, as recorded in the header.
  [[nodiscard]] std::uint32_t chunk_drives() const noexcept;

  /// True when the columns point into a memory-mapped file (false: heap).
  [[nodiscard]] bool mmap_backed() const noexcept;

 private:
  struct Impl;
  explicit ColumnarFleetView(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<const Impl> impl_;
};

/// Materialize the whole view back into row structs (tests, conversion,
/// and the serve replay path, which wants DriveHistory objects).
[[nodiscard]] trace::FleetTrace materialize(const ColumnarFleetView& view);

}  // namespace ssdfail::store
