#pragma once

// SSDF2: the chunked columnar fleet store (docs/DATA_FORMAT.md).
//
// The v1 binary trace (trace/binary_io) is a row format: one DailyRecord
// struct after another, so dataset construction — the hot path feeding
// every prediction experiment — re-parses and re-materializes the whole
// fleet as row-struct vectors on every build.  SSDF2 lays each DailyRecord
// field out as a contiguous per-drive column inside fixed-size drive
// chunks, with a per-chunk drive index, a per-chunk CRC32, and a footer
// directory, so a reader can
//
//   - memory-map the file and expose every column as a zero-copy
//     std::span (ColumnarFleetView; heap-backed fallback when mmap is
//     unavailable),
//   - walk chunks independently (chunk-parallel dataset builds in
//     core/dataset_builder), and
//   - detect any single-bit corruption via CRC (per chunk, plus a footer
//     CRC that also covers the file header).
//
// Two columnar on-disk versions share this reader:
//
//   v2 — uncompressed: every column stored raw and 8-aligned, so mapped
//        spans point straight into the file (zero copy).
//   v3 — compressed + scan-optimized: each column is independently
//        encoded (delta+bitpack / bitpack / RLE / raw, whichever is
//        smallest — store/encoding.hpp), and the footer directory carries
//        a per-chunk ZONE MAP (per-column min/max, model mask, swap
//        count) so scans can prove a chunk irrelevant and skip it before
//        touching — or decoding — a single column byte (ScanPredicate).
//        Chunks decode lazily into per-chunk scratch buffers on first
//        access; the ChunkView API is identical, which is what keeps
//        dataset builds bit-identical across v2 and v3 (pinned by
//        tests/store/test_zone_map_pruning.cpp and the golden suite).
//
// Same observable-only contract as v1: ground truth is never serialized.
// Every field is little-endian; columns are 8-byte aligned so the mapped
// spans are naturally aligned for their element type.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/drive_history.hpp"

namespace ssdfail::store {

/// SSDF2 shares the "SSDF" magic with v1; the version field discriminates.
inline constexpr std::uint32_t kColumnarVersion = 2;

/// The compressed, zone-mapped revision (SSDF2 v3).
inline constexpr std::uint32_t kColumnarVersionV3 = 3;

/// Default drives per chunk: large enough to amortize per-chunk overhead,
/// small enough that chunk-parallel builds load-balance.
inline constexpr std::uint32_t kDefaultChunkDrives = 256;

struct ColumnarWriteOptions {
  std::uint32_t chunk_drives = kDefaultChunkDrives;  ///< drives per chunk (>= 1)
  /// On-disk version to emit: kColumnarVersion (uncompressed, zero-copy
  /// reads) or kColumnarVersionV3 (compressed + zone maps).
  std::uint32_t version = kColumnarVersion;
};

/// Zone-mapped column identities, in serialized order.  kSwapDay ranges
/// over the swap_days column; all others over the record columns.
enum class ZoneColumn : std::size_t {
  kDay = 0,
  kReads,
  kWrites,
  kErases,
  kPeCycles,
  kBadBlocks,
  kFactoryBadBlocks,
  kFlags,
  kError0,  // kError0 + e for trace::ErrorType e
  // Class-specific channels (trace::kExtCounterFields, same order).
  kReallocatedSectors = kError0 + trace::kNumErrorTypes,
  kSeekErrors,
  kMediaWear,
  kThrottleEvents,
  kSwapDay,
};
inline constexpr std::size_t kNumZoneColumns =
    static_cast<std::size_t>(ZoneColumn::kSwapDay) + 1;

/// Inclusive min/max of one column within one chunk (meaningless when the
/// column is empty — check the chunk's n_records / n_swaps first).
struct ColumnStats {
  std::int64_t min = 0;
  std::int64_t max = 0;
};

/// A predicate a scan wants to push below the decode layer.  Every field
/// is conjunctive; an empty predicate matches everything.
struct ScanPredicate {
  std::optional<trace::DriveModel> model;      ///< only drives of this model
  /// Only drives whose model belongs to this device class (prunes via the
  /// chunk model mask, like `model`; both set = intersection).
  std::optional<trace::DeviceClass> device_class;
  std::optional<std::int32_t> min_day;         ///< rows with day >= min_day
  std::optional<std::int32_t> max_day;         ///< rows with day <= max_day
  bool with_swaps_only = false;                ///< only drives with swap events
  /// Swap-day range pushdown (the Retrainer's "recent failures" scan): only
  /// drives with at least one swap event whose day lies in
  /// [min_swap_day, max_swap_day] (either bound may be open).  Setting a
  /// bound implies with_swaps_only — a swap-free chunk can never match.
  /// Prunes against the ZoneColumn::kSwapDay min/max carried by v3 zone
  /// maps; v2 files still prune swap-free chunks via n_swaps.
  std::optional<std::int32_t> min_swap_day;
  std::optional<std::int32_t> max_swap_day;

  /// True when any swap-related constraint is active.
  [[nodiscard]] bool wants_swaps() const noexcept {
    return with_swaps_only || min_swap_day.has_value() || max_swap_day.has_value();
  }
};

/// Per-chunk pruning metadata from the footer directory.  v3 files carry
/// exact per-column stats; v2 files synthesize the model mask and counts
/// from the drive index (stats_valid = false, so day predicates cannot
/// prune — they still filter row-by-row above the store).
struct ChunkZoneMap {
  std::uint32_t model_mask = 0;  ///< bit (1 << model) per model present
  std::uint64_t n_records = 0;
  std::uint64_t n_swaps = 0;
  bool stats_valid = false;      ///< column min/max populated (v3)
  std::array<ColumnStats, kNumZoneColumns> columns{};

  [[nodiscard]] const ColumnStats& stats(ZoneColumn c) const noexcept {
    return columns[static_cast<std::size_t>(c)];
  }

  /// False only when NO row of the chunk can satisfy `pred` — pruning is
  /// conservative, never lossy: a true return means "must scan", not
  /// "contains a match".
  [[nodiscard]] bool may_match(const ScanPredicate& pred) const noexcept;
};

/// Write the fleet as an SSDF2 columnar file to a binary stream.
void write_columnar(std::ostream& out, const trace::FleetTrace& fleet,
                    const ColumnarWriteOptions& options = {});

/// Write an SSDF2 file at `path` (truncates).  Throws std::runtime_error
/// on I/O failure.
void write_columnar_file(const std::string& path, const trace::FleetTrace& fleet,
                         const ColumnarWriteOptions& options = {});

/// One drive's slice of a chunk: which column rows and swap slots are its.
struct DriveRef {
  trace::DriveModel model = trace::DriveModel::MlcA;
  std::uint32_t drive_index = 0;
  std::int32_t deploy_day = 0;
  std::size_t row_begin = 0;   ///< first row of this drive within the chunk
  std::size_t row_count = 0;
  std::size_t swap_begin = 0;  ///< first swap slot within the chunk
  std::size_t swap_count = 0;

  [[nodiscard]] std::uint64_t uid() const noexcept {
    return (static_cast<std::uint64_t>(model) << 32) | drive_index;
  }
};

/// Zero-copy view of one chunk: per-field columns spanning every record of
/// every drive in the chunk (drive-major, day-ordered within a drive).
struct ChunkView {
  std::span<const DriveRef> drives;

  std::span<const std::int32_t> day;
  std::span<const std::uint32_t> reads;
  std::span<const std::uint32_t> writes;
  std::span<const std::uint32_t> erases;
  std::span<const std::uint32_t> pe_cycles;
  std::span<const std::uint32_t> bad_blocks;
  std::span<const std::uint16_t> factory_bad_blocks;
  std::span<const std::uint8_t> flags;  ///< bit 0: read_only, bit 1: dead
  std::array<std::span<const std::uint32_t>, trace::kNumErrorTypes> errors;
  std::span<const std::uint32_t> reallocated_sectors;
  std::span<const std::uint32_t> seek_errors;
  std::span<const std::uint32_t> media_wear;
  std::span<const std::uint32_t> throttle_events;
  std::span<const std::int32_t> swap_days;

  /// Gather one row back into a DailyRecord struct.
  [[nodiscard]] trace::DailyRecord record(std::size_t row) const;

  /// Rebuild `out` as the full history of `ref` (records + swaps).  The
  /// output's vectors are reused across calls — the chunk-parallel dataset
  /// build gathers one drive at a time into a per-worker scratch history
  /// instead of materializing the fleet.
  void gather_drive(const DriveRef& ref, trace::DriveHistory& out) const;
};

struct OpenOptions {
  /// Verify every chunk CRC at open (one sequential pass).  Disable only
  /// for trusted files where open latency matters; corruption then
  /// surfaces as silently wrong data, exactly what CRCs exist to prevent.
  bool verify_crc = true;
  /// Permit the mmap backing; when false (or when mapping fails) the file
  /// is read into a heap buffer instead (counted by
  /// store_mmap_fallback_total).
  bool allow_mmap = true;
};

/// Read-only view of an SSDF2 file.  Cheap to copy (shared backing).
/// Column spans stay valid for the lifetime of any copy of the view.
class ColumnarFleetView {
 public:
  /// Open `path`, mmap-backed where possible, heap-backed otherwise.
  /// Throws std::runtime_error on malformed, truncated, or corrupt files.
  [[nodiscard]] static ColumnarFleetView open(const std::string& path,
                                              const OpenOptions& options = {});

  /// Parse an in-memory SSDF2 image (always heap-backed).
  [[nodiscard]] static ColumnarFleetView from_buffer(std::vector<char> bytes,
                                                     const OpenOptions& options = {});

  [[nodiscard]] std::size_t chunk_count() const noexcept;
  [[nodiscard]] const ChunkView& chunk(std::size_t index) const;

  [[nodiscard]] std::size_t drive_count() const noexcept;
  [[nodiscard]] std::size_t total_records() const noexcept;
  [[nodiscard]] std::size_t total_swaps() const noexcept;

  /// The writer's drives-per-chunk knob, as recorded in the header.
  [[nodiscard]] std::uint32_t chunk_drives() const noexcept;

  /// On-disk format version of the backing file (2 or 3).
  [[nodiscard]] std::uint32_t version() const noexcept;

  /// Pruning metadata for chunk `index` — available without decoding the
  /// chunk (v3) or from the drive index (v2).  Combine with may_match to
  /// skip chunks entirely.
  [[nodiscard]] const ChunkZoneMap& zone_map(std::size_t index) const;

  /// True when the columns point into a memory-mapped file (false: heap).
  [[nodiscard]] bool mmap_backed() const noexcept;

 private:
  struct Impl;
  explicit ColumnarFleetView(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<const Impl> impl_;
};

/// Materialize the whole view back into row structs (tests, conversion,
/// and the serve replay path, which wants DriveHistory objects).
[[nodiscard]] trace::FleetTrace materialize(const ColumnarFleetView& view);

}  // namespace ssdfail::store
