#include "store/sharded.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "store/crc32.hpp"

namespace ssdfail::store {
namespace {

constexpr char kManifestMagic[4] = {'S', 'S', 'D', 'M'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("shard manifest: " + what);
}

template <typename T>
void put(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T get(const std::string& bytes, std::size_t& pos) {
  if (sizeof(T) > bytes.size() - pos) fail("truncated manifest");
  T value;
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

/// Shard names never carry directory components — the manifest must not be
/// able to point a reader outside its own directory.
bool valid_shard_name(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos && name != "." && name != "..";
}

}  // namespace

std::string encode_manifest(const ShardManifest& manifest) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  put<std::uint32_t>(out, kManifestVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(manifest.shards.size()));
  for (const ShardInfo& s : manifest.shards) {
    if (!valid_shard_name(s.file)) fail("invalid shard name " + s.file);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.file.size()));
    out.append(s.file);
    put<std::uint64_t>(out, s.bytes);
    put<std::uint64_t>(out, s.n_drives);
    put<std::uint64_t>(out, s.n_records);
    put<std::uint64_t>(out, s.n_swaps);
  }
  put<std::uint32_t>(out, crc32(0, out));
  put<std::uint32_t>(out, 0);
  return out;
}

ShardManifest decode_manifest(const std::string& bytes) {
  if (bytes.size() < 12 + 8) fail("truncated manifest");
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0)
    fail("bad magic");
  std::size_t pos = sizeof(kManifestMagic);
  const auto version = get<std::uint32_t>(bytes, pos);
  if (version != kManifestVersion)
    fail("unsupported manifest version " + std::to_string(version));
  const auto n_shards = get<std::uint32_t>(bytes, pos);
  if (static_cast<std::uint64_t>(n_shards) * 36 > bytes.size())
    fail("implausible shard count");

  ShardManifest manifest;
  manifest.shards.reserve(n_shards);
  for (std::uint32_t i = 0; i < n_shards; ++i) {
    ShardInfo s;
    const auto name_len = get<std::uint32_t>(bytes, pos);
    if (name_len > bytes.size() - pos) fail("truncated manifest");
    s.file.assign(bytes.data() + pos, name_len);
    pos += name_len;
    if (!valid_shard_name(s.file)) fail("invalid shard name " + s.file);
    s.bytes = get<std::uint64_t>(bytes, pos);
    s.n_drives = get<std::uint64_t>(bytes, pos);
    s.n_records = get<std::uint64_t>(bytes, pos);
    s.n_swaps = get<std::uint64_t>(bytes, pos);
    manifest.shards.push_back(std::move(s));
  }
  const std::size_t crc_pos = pos;
  const auto stored_crc = get<std::uint32_t>(bytes, pos);
  if (get<std::uint32_t>(bytes, pos) != 0) fail("nonzero reserved field");
  if (pos != bytes.size()) fail("trailing bytes after manifest");
  if (crc32(0, std::span<const char>(bytes.data(), crc_pos)) != stored_crc)
    fail("manifest CRC mismatch");
  return manifest;
}

void write_manifest(const std::string& dir, const ShardManifest& manifest) {
  const std::string image = encode_manifest(manifest);
  const std::filesystem::path final_path = std::filesystem::path(dir) / kManifestName;
  const std::filesystem::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot write " + tmp_path.string());
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) fail("write failed for " + tmp_path.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) fail("cannot rename manifest into place: " + ec.message());
}

ShardManifest read_manifest(const std::string& dir) {
  const std::filesystem::path path = std::filesystem::path(dir) / kManifestName;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open " + path.string());
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<std::size_t>(std::max<std::streamoff>(size, 0)), '\0');
  if (!bytes.empty() &&
      !in.read(bytes.data(), static_cast<std::streamsize>(bytes.size())))
    fail("cannot read " + path.string());
  return decode_manifest(bytes);
}

void write_sharded(const std::string& dir, const trace::FleetTrace& fleet,
                   const ShardedWriteOptions& options) {
  std::filesystem::create_directories(dir);
  const std::uint32_t per_shard = std::max<std::uint32_t>(1, options.drives_per_shard);

  ShardManifest manifest;
  std::size_t shard_index = 0;
  for (std::size_t first = 0; first < fleet.drives.size(); first += per_shard) {
    const std::size_t last =
        std::min<std::size_t>(first + per_shard, fleet.drives.size());
    trace::FleetTrace part;
    part.drives.assign(fleet.drives.begin() + static_cast<std::ptrdiff_t>(first),
                       fleet.drives.begin() + static_cast<std::ptrdiff_t>(last));

    char name[32];
    std::snprintf(name, sizeof(name), "shard-%06zu.ssdf2", shard_index++);
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    write_columnar_file(path.string(), part, options.store);

    ShardInfo info;
    info.file = name;
    info.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(path));
    info.n_drives = part.drives.size();
    for (const trace::DriveHistory& d : part.drives) {
      info.n_records += d.records.size();
      info.n_swaps += d.swaps.size();
    }
    manifest.shards.push_back(std::move(info));
  }
  write_manifest(dir, manifest);
}

ShardedFleetView ShardedFleetView::open(const std::string& dir,
                                        const OpenOptions& options) {
  const ShardManifest manifest = read_manifest(dir);
  ShardedFleetView view;
  view.shards_.reserve(manifest.shards.size());
  for (const ShardInfo& info : manifest.shards) {
    const std::filesystem::path path = std::filesystem::path(dir) / info.file;
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) fail("cannot stat shard " + info.file + ": " + ec.message());
    if (size != info.bytes)
      fail("shard " + info.file + " size disagrees with manifest");
    ColumnarFleetView shard = ColumnarFleetView::open(path.string(), options);
    if (shard.drive_count() != info.n_drives ||
        shard.total_records() != info.n_records ||
        shard.total_swaps() != info.n_swaps)
      fail("shard " + info.file + " totals disagree with manifest");
    view.drive_count_ += shard.drive_count();
    view.total_records_ += shard.total_records();
    view.total_swaps_ += shard.total_swaps();
    view.shards_.push_back(std::move(shard));
  }
  return view;
}

trace::FleetTrace materialize(const ShardedFleetView& view) {
  trace::FleetTrace fleet;
  fleet.drives.reserve(view.drive_count());
  for (std::size_t s = 0; s < view.shard_count(); ++s) {
    trace::FleetTrace part = materialize(view.shard(s));
    for (trace::DriveHistory& d : part.drives) fleet.drives.push_back(std::move(d));
  }
  return fleet;
}

}  // namespace ssdfail::store
