#include "stats/streaming.hpp"

#include <algorithm>
#include <cmath>

namespace ssdfail::stats {

void StreamingSummary::merge(const StreamingSummary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingSummary::stddev() const noexcept { return std::sqrt(variance()); }

void ReservoirSample::add(double x) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(x);
    return;
  }
  const std::uint64_t j = rng_.uniform_index(seen_);
  if (j < capacity_) values_[static_cast<std::size_t>(j)] = x;
}

void ReservoirSample::merge(const ReservoirSample& other) {
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    values_ = other.values_;
    seen_ = other.seen_;
    return;
  }
  // Re-sample the union: draw each slot from one side with probability
  // proportional to that side's population.  This preserves (approximate)
  // uniformity over the union.
  std::vector<double> merged;
  merged.reserve(capacity_);
  const double p_self =
      static_cast<double>(seen_) / static_cast<double>(seen_ + other.seen_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const auto& source = rng_.bernoulli(p_self) ? values_ : other.values_;
    if (source.empty()) continue;
    merged.push_back(source[static_cast<std::size_t>(rng_.uniform_index(source.size()))]);
  }
  values_ = std::move(merged);
  seen_ += other.seen_;
}

std::vector<double> ReservoirSample::sorted() const {
  std::vector<double> copy = values_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

double quantile_sorted(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

}  // namespace ssdfail::stats
