#pragma once

// Survival analysis under right-censoring.
//
// The paper's Figures 3 and 5 plot empirical CDFs with a probability bar
// for never-observed events; the statistically principled treatment of the
// same data is the Kaplan-Meier survival estimator (censoring handled per
// observation, not as an end bar) and the Nelson-Aalen cumulative hazard.
// bench_fig03/05 print both views.

#include <cstdint>
#include <vector>

namespace ssdfail::stats {

/// One subject: observed for `time` units; `event` says whether the event
/// occurred at that time (true) or observation was censored (false).
struct SurvivalObservation {
  double time = 0.0;
  bool event = false;
};

/// A step of an estimated curve: value on [time, next step's time).
struct SurvivalPoint {
  double time = 0.0;
  double value = 0.0;
  std::uint64_t at_risk = 0;  ///< subjects at risk just before `time`
};

/// Kaplan-Meier estimate of S(t) = P(T > t).  Returns the step function's
/// breakpoints in increasing time order, starting implicitly from S(0)=1.
/// Empty input yields an empty curve.
[[nodiscard]] std::vector<SurvivalPoint> kaplan_meier(
    std::vector<SurvivalObservation> observations);

/// Nelson-Aalen estimate of the cumulative hazard H(t).
[[nodiscard]] std::vector<SurvivalPoint> nelson_aalen(
    std::vector<SurvivalObservation> observations);

/// Evaluate a step curve at time t (the value of the latest step <= t;
/// `initial` before the first step: 1 for KM, 0 for NA).
[[nodiscard]] double step_at(const std::vector<SurvivalPoint>& curve, double t,
                             double initial);

/// Median survival time: smallest step time with S(t) <= 0.5, or NaN if the
/// curve never drops that far (more than half the mass censored).
[[nodiscard]] double median_survival(const std::vector<SurvivalPoint>& km_curve);

}  // namespace ssdfail::stats
