#include "stats/rng.hpp"

#include <algorithm>
#include <cmath>

namespace ssdfail::stats {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: two uniforms -> two independent normals.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain to avoid underflow.
    const double l = -mean;
    double acc = 0.0;
    std::uint64_t k = 0;
    for (;;) {
      acc += std::log(uniform());
      if (acc < l) return k;
      ++k;
      if (k > 1000) return k;  // defensive: cannot happen for mean < 30
    }
  }
  // Normal approximation with continuity correction; adequate for the
  // large-mean counters we model (daily op counts are >> 30).
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(weights[i], 0.0);
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ssdfail::stats
