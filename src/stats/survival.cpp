#include "stats/survival.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ssdfail::stats {
namespace {

void sort_by_time(std::vector<SurvivalObservation>& obs) {
  std::sort(obs.begin(), obs.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              // Events before censorings at ties (the standard convention:
              // a subject censored at t was still at risk for events at t).
              return a.event && !b.event;
            });
}

}  // namespace

std::vector<SurvivalPoint> kaplan_meier(std::vector<SurvivalObservation> observations) {
  sort_by_time(observations);
  std::vector<SurvivalPoint> curve;
  double survival = 1.0;
  std::uint64_t at_risk = observations.size();
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::uint64_t events = 0;
    std::uint64_t leaving = 0;
    while (i < observations.size() && observations[i].time == t) {
      if (observations[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0 && at_risk > 0) {
      survival *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      curve.push_back({t, survival, at_risk});
    }
    at_risk -= leaving;
  }
  return curve;
}

std::vector<SurvivalPoint> nelson_aalen(std::vector<SurvivalObservation> observations) {
  sort_by_time(observations);
  std::vector<SurvivalPoint> curve;
  double hazard = 0.0;
  std::uint64_t at_risk = observations.size();
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::uint64_t events = 0;
    std::uint64_t leaving = 0;
    while (i < observations.size() && observations[i].time == t) {
      if (observations[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0 && at_risk > 0) {
      hazard += static_cast<double>(events) / static_cast<double>(at_risk);
      curve.push_back({t, hazard, at_risk});
    }
    at_risk -= leaving;
  }
  return curve;
}

double step_at(const std::vector<SurvivalPoint>& curve, double t, double initial) {
  double value = initial;
  for (const auto& point : curve) {
    if (point.time > t) break;
    value = point.value;
  }
  return value;
}

double median_survival(const std::vector<SurvivalPoint>& km_curve) {
  for (const auto& point : km_curve)
    if (point.value <= 0.5) return point.time;
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace ssdfail::stats
