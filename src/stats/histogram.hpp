#pragma once

// Fixed-bin histograms and binned rate estimators.
//
// BinnedRate is the workhorse behind the paper's "failure rate by month of
// age" (Fig 6) and "failure rate per 250 P/E cycles" (Fig 8): a ratio of an
// event count to an exposure count per bin, which normalizes away uneven
// population coverage.

#include <cstdint>
#include <vector>

namespace ssdfail::stats {

/// Equal-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept;

  /// Index of the bin containing x (clamped).
  [[nodiscard]] std::size_t bin_index(double x) const noexcept;

  /// Quantile estimate: the upper edge of the first bin where the
  /// cumulative mass reaches q * total().  Leading empty bins never
  /// satisfy the crossing (so q = 0 lands on the first *occupied* bin,
  /// not bin 0), q is clamped to [0, 1], and an empty histogram returns
  /// 0.  Because add() clamps out-of-range values to the edge bins, the
  /// result never exceeds the configured upper bound.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
};

/// Per-bin ratio of events to exposure.  rate(i) = events(i) / exposure(i).
class BinnedRate {
 public:
  BinnedRate(double lo, double hi, std::size_t bins)
      : events_(lo, hi, bins), exposure_(lo, hi, bins) {}

  void add_event(double x, double weight = 1.0) noexcept { events_.add(x, weight); }
  void add_exposure(double x, double weight = 1.0) noexcept { exposure_.add(x, weight); }
  void merge(const BinnedRate& other);

  [[nodiscard]] std::size_t bins() const noexcept { return events_.bins(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept { return events_.bin_lo(i); }
  [[nodiscard]] double events(std::size_t i) const noexcept { return events_.count(i); }
  [[nodiscard]] double exposure(std::size_t i) const noexcept { return exposure_.count(i); }

  /// Events per unit exposure in bin i; 0 when the bin has no exposure.
  [[nodiscard]] double rate(std::size_t i) const noexcept;

 private:
  Histogram events_;
  Histogram exposure_;
};

}  // namespace ssdfail::stats
