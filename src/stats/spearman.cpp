#include "stats/spearman.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ssdfail::stats {

std::vector<double> midranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j]: all get the average 1-based rank.
    const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  const auto rx = midranks(x);
  const auto ry = midranks(y);
  return pearson(rx, ry);
}

std::vector<std::vector<double>> spearman_matrix(
    const std::vector<std::vector<double>>& columns) {
  const std::size_t k = columns.size();
  // Rank once per column, then Pearson over rank vectors pairwise.
  std::vector<std::vector<double>> ranks;
  ranks.reserve(k);
  for (const auto& col : columns) ranks.push_back(midranks(col));

  std::vector<std::vector<double>> rho(k, std::vector<double>(k, 1.0));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = pearson(ranks[i], ranks[j]);
      rho[i][j] = r;
      rho[j][i] = r;
    }
  }
  return rho;
}

}  // namespace ssdfail::stats
