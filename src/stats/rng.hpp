#pragma once

// Deterministic, splittable random number generation.
//
// Every stochastic component in ssdfail derives its randomness from an
// explicit seed through this header.  Streams are *splittable*: a child
// stream for (seed, key...) is derived by hashing, so per-drive simulation
// is reproducible regardless of thread schedule or fleet size.

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace ssdfail::stats {

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
/// Used both as a stand-alone mixer and to seed Pcg64.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Initial state of the hash_keys fold.
inline constexpr std::uint64_t kHashKeysInit = 0x2545f4914f6cdd1dULL;

/// One fold step of hash_keys: extend the running hash `h` by one key.
/// Exposed so hot loops can hoist a constant key prefix — e.g. a per-row
/// stream keyed {seed, drive, day} folds {seed, drive} once per drive and
/// only the day per row.  hash_fold(hash_fold(kHashKeysInit, a), b) ==
/// hash_keys({a, b}) by construction.
[[nodiscard]] constexpr std::uint64_t hash_fold(std::uint64_t h, std::uint64_t key) noexcept {
  h ^= key + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t s = h;
  return splitmix64(s);
}

/// Hash an arbitrary list of 64-bit keys into a single stream seed.
/// Order-sensitive, avalanching; used to derive per-entity substreams.
[[nodiscard]] constexpr std::uint64_t hash_keys(std::initializer_list<std::uint64_t> keys) noexcept {
  std::uint64_t h = kHashKeysInit;
  for (std::uint64_t k : keys) h = hash_fold(h, k);
  return h;
}

/// PCG-XSH-RR-like 64->32 generator extended to produce 64-bit outputs by
/// pairing draws.  Small state, fast, passes practical statistical tests,
/// and — crucially for us — cheap to construct per drive.
class Rng {
 public:
  /// Construct from a raw seed.
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Construct a substream for a composite key, e.g. {global, model, drive}.
  Rng(std::initializer_list<std::uint64_t> keys) noexcept : Rng(hash_keys(keys)) {}

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    state_ = splitmix64(s);
    inc_ = splitmix64(s) | 1ULL;  // stream selector must be odd
    (void)next_u32();
  }

  /// Uniform 32-bit draw.
  [[nodiscard]] std::uint32_t next_u32() noexcept {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via the polar (Marsaglia) method with caching.
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd) noexcept {
    return mean + sd * normal();
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
  }

  /// Weibull(shape k, scale lambda).
  [[nodiscard]] double weibull(double shape, double scale) noexcept {
    return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
  }

  /// Pareto with minimum xm and tail index alpha.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Log-uniform over [lo, hi]; lo > 0.
  [[nodiscard]] double loguniform(double lo, double hi) noexcept {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Poisson draw.  Uses inversion for small means and PTRS-style normal
  /// approximation with rejection fallback for large ones.
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Pick an index from a discrete distribution given by (unnormalized)
  /// non-negative weights.  Returns weights.size()-1 if rounding slips.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 1;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ssdfail::stats
