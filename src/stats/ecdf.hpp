#pragma once

// Empirical CDFs, including right-censored variants.
//
// Several of the paper's figures (3, 5) plot CDFs with a probability mass
// "bar at infinity" for observations that never terminate within the trace
// window.  CensoredEcdf models exactly that: finite observations plus a
// count of censored ones.

#include <cstdint>
#include <string>
#include <vector>

namespace ssdfail::stats {

/// Plain empirical CDF over finite samples.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void merge(const Ecdf& other);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v with P(X <= v) >= q.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Sorted sample values (evaluation grid for plotting).
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

/// Empirical CDF where some observations are right-censored ("never seen to
/// end").  `at()` reports the fraction of *all* observations at or below x;
/// the censored mass never enters the finite part, matching the paper's
/// "bar at infinity" presentation.
class CensoredEcdf {
 public:
  void add_observed(double x) { finite_.add(x); }
  void add_censored() { ++censored_; }
  void merge(const CensoredEcdf& other);

  [[nodiscard]] double at(double x) const;
  [[nodiscard]] double censored_fraction() const;
  [[nodiscard]] std::size_t total() const noexcept { return finite_.size() + censored_; }
  [[nodiscard]] const Ecdf& finite_part() const noexcept { return finite_; }

 private:
  Ecdf finite_;
  std::size_t censored_ = 0;
};

/// One row of a rendered CDF: an x grid point and the CDF value there.
struct CdfPoint {
  double x = 0.0;
  double p = 0.0;
};

/// Evaluate a CDF on a grid of points (for bench table output).
[[nodiscard]] std::vector<CdfPoint> evaluate_cdf(const Ecdf& cdf,
                                                 const std::vector<double>& grid);

}  // namespace ssdfail::stats
