#pragma once

// Spearman rank correlation (Table 2 of the paper).
//
// Spearman's rho is the Pearson correlation of *ranks*.  Our inputs are
// cumulative error counts, which contain massive tie groups (most drives
// have zero of the rarer error types), so tie-aware mid-ranking is
// essential — the textbook 6*sum(d^2) shortcut would be wrong here.

#include <span>
#include <vector>

namespace ssdfail::stats {

/// Mid-ranks of `values` (ties share the average of their rank range).
/// Ranks are 1-based to match the statistics convention.
[[nodiscard]] std::vector<double> midranks(std::span<const double> values);

/// Pearson correlation coefficient; NaN if either side is constant.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation; NaN if either side is constant.
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Symmetric Spearman correlation matrix over columns: `columns[i]` is the
/// i-th variable's sample vector; all columns must have equal length.
[[nodiscard]] std::vector<std::vector<double>> spearman_matrix(
    const std::vector<std::vector<double>>& columns);

}  // namespace ssdfail::stats
