#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ssdfail::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range/bins");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

std::size_t Histogram::bin_index(double x) const noexcept {
  if (x < lo_) return 0;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x, double weight) noexcept { counts_[bin_index(x)] += weight; }

void Histogram::merge(const Histogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  const double mass = total();
  if (mass <= 0.0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * mass;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > 0.0 && cum >= target) return bin_hi(i);
  }
  return bin_hi(counts_.size() - 1);
}

double Histogram::total() const noexcept {
  double t = 0.0;
  for (double c : counts_) t += c;
  return t;
}

void BinnedRate::merge(const BinnedRate& other) {
  events_.merge(other.events_);
  exposure_.merge(other.exposure_);
}

double BinnedRate::rate(std::size_t i) const noexcept {
  const double ex = exposure_.count(i);
  return ex > 0.0 ? events_.count(i) / ex : 0.0;
}

}  // namespace ssdfail::stats
