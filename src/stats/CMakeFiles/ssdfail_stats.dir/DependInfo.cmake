
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/spearman.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/spearman.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/spearman.cpp.o.d"
  "/root/repo/src/stats/streaming.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/streaming.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/streaming.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "src/stats/CMakeFiles/ssdfail_stats.dir/survival.cpp.o" "gcc" "src/stats/CMakeFiles/ssdfail_stats.dir/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
