file(REMOVE_RECURSE
  "libssdfail_stats.a"
)
