file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_stats.dir/ecdf.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/ssdfail_stats.dir/histogram.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ssdfail_stats.dir/rng.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/rng.cpp.o.d"
  "CMakeFiles/ssdfail_stats.dir/spearman.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/spearman.cpp.o.d"
  "CMakeFiles/ssdfail_stats.dir/streaming.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/streaming.cpp.o.d"
  "CMakeFiles/ssdfail_stats.dir/survival.cpp.o"
  "CMakeFiles/ssdfail_stats.dir/survival.cpp.o.d"
  "libssdfail_stats.a"
  "libssdfail_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
