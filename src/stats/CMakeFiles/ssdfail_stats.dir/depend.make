# Empty dependencies file for ssdfail_stats.
# This may be replaced when dependencies are built.
