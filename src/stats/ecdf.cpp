#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ssdfail::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), dirty_(true) {
  ensure_sorted();
}

void Ecdf::merge(const Ecdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  dirty_ = true;
}

void Ecdf::ensure_sorted() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
}

double Ecdf::at(double x) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(idx == 0 ? 0 : idx - 1, samples_.size() - 1)];
}

const std::vector<double>& Ecdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

void CensoredEcdf::merge(const CensoredEcdf& other) {
  finite_.merge(other.finite_);
  censored_ += other.censored_;
}

double CensoredEcdf::at(double x) const {
  const std::size_t n = total();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  if (finite_.empty()) return 0.0;
  return finite_.at(x) * static_cast<double>(finite_.size()) / static_cast<double>(n);
}

double CensoredEcdf::censored_fraction() const {
  const std::size_t n = total();
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : static_cast<double>(censored_) / static_cast<double>(n);
}

std::vector<CdfPoint> evaluate_cdf(const Ecdf& cdf, const std::vector<double>& grid) {
  std::vector<CdfPoint> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back({x, cdf.at(x)});
  return out;
}

}  // namespace ssdfail::stats
