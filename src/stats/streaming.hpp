#pragma once

// Streaming (single-pass, mergeable) statistics used by the fleet-scale
// characterization pipeline.  Every accumulator here supports merge() so
// per-thread partials can be combined deterministically.

#include <cstdint>
#include <limits>
#include <vector>

#include "stats/rng.hpp"

namespace ssdfail::stats {

/// Count / mean / variance / min / max in one pass (Welford's algorithm).
class StreamingSummary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Combine with another summary (Chan et al. parallel update).
  void merge(const StreamingSummary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-capacity uniform reservoir sample (Vitter's algorithm R), with a
/// deterministic seed so results are reproducible.  merge() re-samples the
/// union, weighting each side by its observed population size.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity, std::uint64_t seed = 0x5eed)
      : capacity_(capacity), rng_(seed) {}

  void add(double x);
  void merge(const ReservoirSample& other);

  [[nodiscard]] std::uint64_t population() const noexcept { return seen_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Sorted copy of the sample (convenience for quantile computation).
  [[nodiscard]] std::vector<double> sorted() const;

 private:
  std::size_t capacity_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<double> values_;
};

/// q-quantile (0 <= q <= 1) of a sorted sequence using linear interpolation
/// (type-7, the numpy/R default).  Returns NaN for an empty input.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q) noexcept;

/// Convenience: copies, sorts, and evaluates a quantile.
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace ssdfail::stats
