file(REMOVE_RECURSE
  "libssdfail_parallel.a"
)
