file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/ssdfail_parallel.dir/thread_pool.cpp.o.d"
  "libssdfail_parallel.a"
  "libssdfail_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
