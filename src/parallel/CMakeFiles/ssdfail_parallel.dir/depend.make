# Empty dependencies file for ssdfail_parallel.
# This may be replaced when dependencies are built.
