#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace ssdfail::parallel {
namespace {

/// Pool the current thread is a worker of, if any (nested-call detection).
thread_local const ThreadPool* t_owning_pool = nullptr;

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("SSDFAIL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(threads, 1u);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_on_all(const std::function<void(unsigned)>& fn) {
  if (t_owning_pool == this) {
    // Nested parallelism: run every worker's share inline.
    for (unsigned w = 0; w < workers_.size(); ++w) fn(w);
    return;
  }
  std::unique_lock lock(mutex_);
  job_ = &fn;
  remaining_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned index) {
  t_owning_pool = this;
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::scoped_lock lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ssdfail::parallel
