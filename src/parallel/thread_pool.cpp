#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace ssdfail::parallel {
namespace {

/// Pool the current thread is a worker of, if any (nested-call detection).
thread_local ThreadPool* t_owning_pool = nullptr;

/// Programmatic thread-count override (0 = none); see set_default_thread_count.
std::atomic<unsigned> g_thread_override{0};

/// Pool metrics, aggregated across all pools (pools are anonymous).
/// Handles are interned once; the registry outlives every pool (leaked
/// singleton), so touching these during static teardown is safe.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "threadpool_tasks_total", {}, "tasks executed by pool workers and helpers");
  obs::Counter& steals = obs::MetricsRegistry::global().counter(
      "threadpool_steals_total", {},
      "tasks a TaskGroup::wait() helper ran inline instead of a worker");
  obs::Gauge& queue_depth = obs::MetricsRegistry::global().gauge(
      "threadpool_queue_depth", {}, "tasks submitted but not yet picked up");
  obs::Histogram& task_latency = obs::MetricsRegistry::global().histogram(
      "threadpool_task_latency_us", kTaskLatencyBounds, {},
      "enqueue-to-completion latency per task");

  static constexpr double kTaskLatencyBounds[] = {
      10.0,    20.0,    50.0,    100.0,   200.0,   500.0,    1000.0,
      2000.0,  5000.0,  10000.0, 20000.0, 50000.0, 100000.0, 200000.0,
      500000.0, 1000000.0, 2000000.0, 5000000.0, 10000000.0};
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* const metrics = new PoolMetrics();  // leaked, teardown-safe
  return *metrics;
}

void record_task_done(std::chrono::steady_clock::time_point enqueued_at) {
  PoolMetrics& m = pool_metrics();
  m.tasks.inc();
  m.task_latency.observe(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                enqueued_at)
          .count());
}

}  // namespace

unsigned default_thread_count() {
  if (const unsigned forced = g_thread_override.load(std::memory_order_relaxed))
    return std::min(forced, 256u);
  if (const char* env = std::getenv("SSDFAIL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void set_default_thread_count(unsigned threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(threads, 1u);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const noexcept { return t_owning_pool == this; }

void ThreadPool::enqueue(Task task) {
  pool_metrics().queue_depth.add(1.0);
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    pool_metrics().queue_depth.add(-1.0);
    task.group->on_dequeued();
    {
      // Run under the submitter's span context so spans opened inside the
      // task attribute to the submitting call-site.
      obs::ScopedSpanContext span_guard(task.span_ctx);
      task.group->run_task(task.fn);
    }
    record_task_done(task.enqueued_at);
  }
}

void ThreadPool::run_on_all(const std::function<void(unsigned)>& fn) {
  if (t_owning_pool == this) {
    // Nested parallelism: this level's workers are already busy running
    // the outer level; execute every chunk inline.
    for (unsigned w = 0; w < size(); ++w) fn(w);
    return;
  }
  TaskGroup group(*this);
  for (unsigned w = 0; w < size(); ++w) {
    group.submit([&fn, w] { fn(w); });
  }
  group.wait();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::current() {
  return t_owning_pool != nullptr ? *t_owning_pool : global();
}

TaskGroup::~TaskGroup() {
  // Tasks capture state owned by the submitting scope, so stragglers must
  // finish before the group dies; an unretrieved exception is dropped here
  // (call wait() to observe it).
  try {
    wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void TaskGroup::submit(std::function<void()> fn) {
  {
    std::scoped_lock lock(mutex_);
    ++pending_;
    ++queued_;
  }
  // A nested submission (from one of this group's running tasks) must wake
  // a waiter blocked in wait() so its helper loop sees the new task.
  done_cv_.notify_all();
  pool_.enqueue(ThreadPool::Task{std::move(fn), this, obs::current_span_context(),
                                 std::chrono::steady_clock::now()});
}

void TaskGroup::on_dequeued() noexcept {
  std::scoped_lock lock(mutex_);
  --queued_;
}

void TaskGroup::run_task(const std::function<void()>& fn) noexcept {
  try {
    fn();
  } catch (...) {
    std::scoped_lock lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  {
    std::scoped_lock lock(mutex_);
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void TaskGroup::wait() {
  for (;;) {
    // Help: steal one of this group's still-queued tasks and run it
    // inline.  This guarantees progress even when every pool worker is
    // blocked in some other group's wait (nested submission).
    std::function<void()> fn;
    obs::SpanContext fn_ctx;
    std::chrono::steady_clock::time_point fn_enqueued_at{};
    {
      std::scoped_lock pool_lock(pool_.mutex_);
      for (auto it = pool_.queue_.begin(); it != pool_.queue_.end(); ++it) {
        if (it->group == this) {
          fn = std::move(it->fn);
          fn_ctx = it->span_ctx;
          fn_enqueued_at = it->enqueued_at;
          pool_.queue_.erase(it);
          break;
        }
      }
    }
    if (fn) {
      pool_metrics().queue_depth.add(-1.0);
      pool_metrics().steals.inc();
      on_dequeued();
      // Adopt the pool context while helping: the task must observe
      // ThreadPool::current() == pool_ exactly as on a worker, so nested
      // parallel code stays inside the pool's thread budget instead of
      // fanning out on the helper's own context (run_task is noexcept,
      // so the restore below always executes).  The span context swaps the
      // same way: the task's spans attribute to its submitter, and the
      // helping time is charged to the task, not the waiter's self time.
      ThreadPool* const saved = std::exchange(t_owning_pool, &pool_);
      {
        obs::ScopedSpanContext span_guard(fn_ctx);
        run_task(fn);
      }
      t_owning_pool = saved;
      record_task_done(fn_enqueued_at);
      continue;
    }
    std::unique_lock lock(mutex_);
    // Wake when everything finished, or when a nested submission queued
    // more of our tasks (so the helper loop can pick them up).
    done_cv_.wait(lock, [&] { return pending_ == 0 || queued_ > 0; });
    if (pending_ == 0) break;
  }
  std::exception_ptr e;
  {
    std::scoped_lock lock(mutex_);
    e = std::exchange(error_, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace ssdfail::parallel
