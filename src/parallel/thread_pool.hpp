#pragma once

// Minimal deterministic data-parallel layer.
//
// Design goals (in order): reproducibility, simplicity, throughput.
//
// The pool is a shared task queue drained by a fixed set of workers.  Work
// is submitted in bulk through a TaskGroup (a wait-group): submit any
// number of tasks, then wait() for all of them.  Exceptions thrown inside
// tasks are captured and rethrown from wait() — never swallowed, never
// std::terminate.  Multiple threads may submit to the same pool
// concurrently; each TaskGroup tracks only its own tasks.
//
// Determinism: parallel_reduce gives each *chunk* its own accumulator and
// merges the partials **in chunk order**, so floating-point results are
// bit-stable for a fixed pool size, and all our statistics accumulators
// are additionally order-insensitive so results are stable across thread
// counts too.  Which OS thread runs a chunk never affects the result.
//
// Nesting: a task running on a worker of pool P that calls parallel_for /
// parallel_reduce / run_on_all on P executes the loop inline and
// sequentially (the outer parallelism level owns the workers).  TaskGroup
// submission from a worker is allowed — wait() helps drain its own group's
// queued tasks, so nested waits cannot deadlock.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_span.hpp"

namespace ssdfail::parallel {

/// Number of worker threads to use by default: hardware concurrency,
/// overridable with the SSDFAIL_THREADS environment variable or
/// programmatically with set_default_thread_count() (e.g. a --threads CLI
/// flag).  The programmatic override wins over the environment.
[[nodiscard]] unsigned default_thread_count();

/// Override default_thread_count() for this process (0 clears the
/// override).  Must be called before the first use of ThreadPool::global()
/// to affect the shared pool, which is sized exactly once.
void set_default_thread_count(unsigned threads);

class TaskGroup;

/// A fixed pool of workers draining a shared task queue.  The pool is
/// intended for coarse-grained fold/tree/fleet-level parallelism; tasks
/// should be >> 1us each.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(chunk_index) for every chunk_index in [0, size()) and block
  /// until all return.  Re-entrant calls from a worker of this pool
  /// (nested parallelism) degrade gracefully to sequential execution on
  /// the calling thread.  The first exception thrown by any chunk is
  /// rethrown here after all chunks finish.
  void run_on_all(const std::function<void(unsigned)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// The pool "context" of the calling thread: the pool this thread is a
  /// worker of, else the global pool.  Default for the parallel loops, so
  /// code launched as a pool task stays inside its pool's thread budget
  /// instead of fanning out on the global pool.
  static ThreadPool& current();

  /// True iff the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    /// Submitter's span context, adopted by whichever thread runs the
    /// task (worker or helper) so spans opened inside attribute to the
    /// submitting call-site — same inheritance rule as the pool context.
    obs::SpanContext span_ctx;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop();
  void enqueue(Task task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
};

/// Wait-group over a ThreadPool: bulk-submit independent tasks, then
/// wait() for all of them.  wait() rethrows the first exception any task
/// threw, and *helps* — it runs this group's still-queued tasks inline —
/// so waiting from a worker thread of the same pool makes progress even
/// when every worker is busy.
///
/// A TaskGroup is owned by one submitting thread; submit() and wait() are
/// not themselves thread-safe against each other (tasks, of course, run
/// concurrently).  The destructor waits for stragglers (discarding any
/// unretrieved exception) so tasks never outlive captured state.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::current()) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue one task.  May be called from any thread, including a worker
  /// of the pool (nested submission).
  void submit(std::function<void()> fn);

  /// Block until every submitted task has finished, running queued tasks
  /// of this group inline while waiting.  Rethrows the first captured
  /// task exception.  After wait() returns the group is reusable.
  void wait();

 private:
  friend class ThreadPool;

  /// Execute one task body on behalf of this group (worker or helper).
  void run_task(const std::function<void()>& fn) noexcept;
  void on_dequeued() noexcept;

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;  ///< submitted, not yet finished
  std::size_t queued_ = 0;   ///< submitted, not yet picked up
  std::exception_ptr error_;
};

/// Parallel loop over [0, n): static contiguous partitioning, one chunk
/// per worker slot.  body(i) must be safe to run concurrently for
/// distinct i.  Exceptions from body propagate to the caller.
template <typename Body>
void parallel_for(std::size_t n, const Body& body, ThreadPool& pool = ThreadPool::current()) {
  const unsigned workers = pool.size();
  if (n == 0) return;
  if (workers <= 1 || n == 1 || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::function<void(unsigned)> task = [&](unsigned w) {
    const std::size_t chunk = (n + workers - 1) / workers;
    const std::size_t begin = std::min<std::size_t>(static_cast<std::size_t>(w) * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
  pool.run_on_all(task);
}

/// Parallel reduction over [0, n).
///  - make():             produce a fresh accumulator (per chunk)
///  - accumulate(acc, i): fold element i into acc
///  - merge(dst, src):    combine partials; called in chunk order
/// Returns the final accumulator.
template <typename Make, typename Accumulate, typename Merge>
auto parallel_reduce(std::size_t n, const Make& make, const Accumulate& accumulate,
                     const Merge& merge, ThreadPool& pool = ThreadPool::current()) {
  using Acc = decltype(make());
  const unsigned workers = pool.size();
  if (workers <= 1 || n <= 1 || pool.on_worker_thread()) {
    Acc acc = make();
    for (std::size_t i = 0; i < n; ++i) accumulate(acc, i);
    return acc;
  }
  std::vector<Acc> partials;
  partials.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) partials.push_back(make());

  std::function<void(unsigned)> task = [&](unsigned w) {
    const std::size_t chunk = (n + workers - 1) / workers;
    const std::size_t begin = std::min<std::size_t>(static_cast<std::size_t>(w) * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    for (std::size_t i = begin; i < end; ++i) accumulate(partials[w], i);
  };
  pool.run_on_all(task);

  Acc result = std::move(partials[0]);
  for (unsigned w = 1; w < workers; ++w) merge(result, partials[w]);
  return result;
}

}  // namespace ssdfail::parallel
