#pragma once

// Minimal deterministic data-parallel layer.
//
// Design goals (in order): reproducibility, simplicity, throughput.
// parallel_reduce gives each worker its own accumulator and merges the
// partials **in worker-index order**, so floating-point results are
// bit-stable for a fixed thread count, and all our statistics accumulators
// are additionally order-insensitive so results are stable across thread
// counts too.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssdfail::parallel {

/// Number of worker threads to use by default: hardware concurrency,
/// overridable with the SSDFAIL_THREADS environment variable.
[[nodiscard]] unsigned default_thread_count();

/// A fixed pool of workers executing blocking "run this index range" jobs.
/// The pool is intended for coarse-grained fleet/tree-level parallelism;
/// tasks should be >> 1us each.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(worker_index) on every worker and block until all return.
  /// Re-entrant calls from a worker of this pool (nested parallelism)
  /// degrade gracefully to sequential execution on the calling thread.
  void run_on_all(const std::function<void(unsigned)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
};

/// Parallel loop over [0, n): static contiguous partitioning, one chunk per
/// worker.  body(i) must be safe to run concurrently for distinct i.
template <typename Body>
void parallel_for(std::size_t n, const Body& body, ThreadPool& pool = ThreadPool::global()) {
  const unsigned workers = pool.size();
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::function<void(unsigned)> task = [&](unsigned w) {
    const std::size_t chunk = (n + workers - 1) / workers;
    const std::size_t begin = std::min<std::size_t>(static_cast<std::size_t>(w) * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
  pool.run_on_all(task);
}

/// Parallel reduction over [0, n).
///  - make():             produce a fresh accumulator (per worker)
///  - accumulate(acc, i): fold element i into acc
///  - merge(dst, src):    combine partials; called in worker order
/// Returns the final accumulator.
template <typename Make, typename Accumulate, typename Merge>
auto parallel_reduce(std::size_t n, const Make& make, const Accumulate& accumulate,
                     const Merge& merge, ThreadPool& pool = ThreadPool::global()) {
  using Acc = decltype(make());
  const unsigned workers = pool.size();
  if (workers <= 1 || n <= 1) {
    Acc acc = make();
    for (std::size_t i = 0; i < n; ++i) accumulate(acc, i);
    return acc;
  }
  std::vector<Acc> partials;
  partials.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) partials.push_back(make());

  std::function<void(unsigned)> task = [&](unsigned w) {
    const std::size_t chunk = (n + workers - 1) / workers;
    const std::size_t begin = std::min<std::size_t>(static_cast<std::size_t>(w) * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    for (std::size_t i = begin; i < end; ++i) accumulate(partials[w], i);
  };
  pool.run_on_all(task);

  Acc result = std::move(partials[0]);
  for (unsigned w = 1; w < workers; ++w) merge(result, partials[w]);
  return result;
}

}  // namespace ssdfail::parallel
