#pragma once

// Streaming construction of prediction datasets from a simulated fleet.
//
// One pass over the fleet per dataset: every labeled-positive drive-day is
// kept; negative drive-days are kept with a fixed probability (test-side
// subsampling).  Uniform negative subsampling leaves TPR/FPR — and hence
// the ROC curve — unbiased; it only adds variance (Section 5.1 discussion,
// validated in tests/core/test_eval_subsampling.cpp).
//
// Post-failure limbo days (after a derived failure, before re-entry) are
// excluded: the drive is not in production there.

#include <optional>

#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {

struct DatasetBuildOptions {
  /// Predict events within the next N days (N >= 1).
  ///
  /// Boundary convention (unified across all label kinds): a drive-day at
  /// day d is positive iff the labeled event occurs on or before day d+N —
  /// an INCLUSIVE upper bound, matching the paper's "fails within the next
  /// N days".  For failure labels the failure day itself also counts
  /// (days_to_failure in [0, N]; the drive's final record precedes the
  /// failure).  For error/bad-block labels only strictly-future
  /// occurrences count (days_to_event in [1, N]), since today's error
  /// count is itself a feature.  Pinned by
  /// tests/core/test_dataset_builder.cpp LookaheadBoundaryIsInclusive.
  int lookahead_days = 1;

  /// Probability of keeping each negative drive-day (deterministic in
  /// (seed, drive, day)).
  double negative_keep_prob = 0.02;

  /// Probability of keeping each positive drive-day.  1.0 (default) for
  /// failure labels, where positives are precious; error-occurrence labels
  /// (Table 8) have abundant positives and subsample both classes —
  /// uniform per-class subsampling leaves TPR and FPR unbiased.
  double positive_keep_prob = 1.0;

  std::uint64_t seed = 101;

  /// Restrict to one drive model (Table 7 / Fig 13), or all when empty.
  std::optional<trace::DriveModel> model_filter;

  /// Restrict rows by drive age at prediction time (Figs 15/16).
  enum class AgeFilter { kAll, kYoungOnly, kOldOnly };
  AgeFilter age_filter = AgeFilter::kAll;

  /// When set, label = "error of this type occurs within the next N days"
  /// instead of failure (Table 8).
  std::optional<trace::ErrorType> error_label;

  /// When true, label = "new bad blocks develop within the next N days"
  /// (Table 8's "Bad block" row).  Mutually exclusive with error_label.
  bool bad_block_label = false;

  /// When true, append the RollingWindow trailing-week features to every
  /// row (extension for large-N prediction; see bench_ext_rolling).
  bool rolling_features = false;
};

/// Build a dataset by streaming the fleet (parallel, deterministic).
[[nodiscard]] ml::Dataset build_dataset(const sim::FleetSimulator& fleet,
                                        const DatasetBuildOptions& options);

/// Build from an in-memory fleet (tests/examples).
[[nodiscard]] ml::Dataset build_dataset(const trace::FleetTrace& fleet,
                                        const DatasetBuildOptions& options);

/// Fold one drive into a dataset under the given options (exposed for
/// incremental/online use by examples).
void append_drive(ml::Dataset& out, const trace::DriveHistory& drive,
                  const DatasetBuildOptions& options);

}  // namespace ssdfail::core
