#pragma once

// Streaming construction of prediction datasets from a simulated fleet —
// the paper's Section 5.1 labeling and sampling protocol (feeds every
// prediction experiment: Tables 6-8, Figs 12-16).
//
// One pass over the fleet per dataset: every labeled-positive drive-day is
// kept; negative drive-days are kept with a fixed probability (test-side
// subsampling).  Uniform negative subsampling leaves TPR/FPR — and hence
// the ROC curve — unbiased; it only adds variance (Section 5.1 discussion,
// validated in tests/core/test_eval_subsampling.cpp).
//
// Post-failure limbo days (after a derived failure, before re-entry) are
// excluded: the drive is not in production there.

#include <optional>

#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::store {
class ColumnarFleetView;
class ShardedFleetView;
}

namespace ssdfail::core {

struct DatasetBuildOptions {
  /// Predict events within the next N days (N >= 1).
  ///
  /// Boundary convention (unified across all label kinds): a drive-day at
  /// day d is positive iff the labeled event occurs on or before day d+N —
  /// an INCLUSIVE upper bound, matching the paper's "fails within the next
  /// N days".  For failure labels the failure day itself also counts
  /// (days_to_failure in [0, N]; the drive's final record precedes the
  /// failure).  For error/bad-block labels only strictly-future
  /// occurrences count (days_to_event in [1, N]), since today's error
  /// count is itself a feature.  Pinned by
  /// tests/core/test_dataset_builder.cpp LookaheadBoundaryIsInclusive.
  int lookahead_days = 1;

  /// Probability of keeping each negative drive-day (deterministic in
  /// (seed, drive, day)).
  double negative_keep_prob = 0.02;

  /// Probability of keeping each positive drive-day.  1.0 (default) for
  /// failure labels, where positives are precious; error-occurrence labels
  /// (Table 8) have abundant positives and subsample both classes —
  /// uniform per-class subsampling leaves TPR and FPR unbiased.
  double positive_keep_prob = 1.0;

  std::uint64_t seed = 101;

  /// Restrict to one drive model (Table 7 / Fig 13), or all when empty.
  std::optional<trace::DriveModel> model_filter;

  /// Restrict to the models of one device class (the cross-class transfer
  /// experiments), or all when empty.  Composes with model_filter by
  /// intersection.  Maps to store::ScanPredicate::device_class zone-map
  /// pushdown on columnar builds, so mixed-fleet stores skip whole chunks
  /// of foreign-class drives without decoding them.
  std::optional<trace::DeviceClass> class_filter;

  /// Restrict rows by drive age at prediction time (Figs 15/16).
  enum class AgeFilter { kAll, kYoungOnly, kOldOnly };
  AgeFilter age_filter = AgeFilter::kAll;

  /// When set, label = "error of this type occurs within the next N days"
  /// instead of failure (Table 8).
  std::optional<trace::ErrorType> error_label;

  /// When true, label = "new bad blocks develop within the next N days"
  /// (Table 8's "Bad block" row).  Mutually exclusive with error_label.
  bool bad_block_label = false;

  /// When true, append the RollingWindow trailing-week features to every
  /// row (extension for large-N prediction; see bench_ext_rolling).
  bool rolling_features = false;

  /// Restrict to prediction rows with day in [min_day, max_day] (either
  /// bound optional).  Cumulative feature state still advances over every
  /// record — only row EMISSION is windowed — so a windowed build yields
  /// exactly the matching subset of the unwindowed build's rows (same
  /// floats, same order).  The online Retrainer uses this to train on
  /// label-matured windows only (day <= now - lookahead).  Maps to
  /// store::ScanPredicate::{min_day,max_day} pushdown on columnar builds.
  std::optional<std::int32_t> min_day;
  std::optional<std::int32_t> max_day;

  /// Restrict to drives with at least one swap event whose day lies in
  /// [min_swap_day, max_swap_day] (set either; an unset bound is open; set
  /// both to INT32_MIN/MAX-free sentinels by leaving them empty).  Lets the
  /// Retrainer skip all-healthy drives — and, via zone-map pushdown
  /// (store::ScanPredicate::{min_swap_day,max_swap_day}), entire all-healthy
  /// chunks — when harvesting positives.  Applied per drive before the walk,
  /// so pruned and unpruned builds stay bit-identical.
  std::optional<std::int32_t> min_swap_day;
  std::optional<std::int32_t> max_swap_day;

  /// True when any swap-range drive filter is active.
  [[nodiscard]] bool wants_swap_range() const noexcept {
    return min_swap_day.has_value() || max_swap_day.has_value();
  }
};

/// Build a dataset by streaming the fleet (parallel, deterministic).
[[nodiscard]] ml::Dataset build_dataset(const sim::FleetSimulator& fleet,
                                        const DatasetBuildOptions& options);

/// Build from an in-memory fleet (tests/examples).
[[nodiscard]] ml::Dataset build_dataset(const trace::FleetTrace& fleet,
                                        const DatasetBuildOptions& options);

/// Build chunk-parallel from a columnar view (store/columnar.hpp) without
/// ever materializing the fleet: each worker gathers one drive at a time
/// from the mapped columns into a per-chunk scratch history.  Bit-identical
/// to the row-path builds — same rows, same order, same floats (pinned by
/// tests/core/test_dataset_builder.cpp ColumnarBuildMatchesRowBuild).
[[nodiscard]] ml::Dataset build_dataset(const store::ColumnarFleetView& fleet,
                                        const DatasetBuildOptions& options);

/// Build over a sharded store (store/sharded.hpp), shard by shard in
/// manifest order.  Bit-identical to a single-file build of the
/// concatenated fleet — per-row decisions are keyed by (seed, uid, day),
/// never by file position.
[[nodiscard]] ml::Dataset build_dataset(const store::ShardedFleetView& fleet,
                                        const DatasetBuildOptions& options);

/// Fold one drive into a dataset under the given options (exposed for
/// incremental/online use by examples).
void append_drive(ml::Dataset& out, const trace::DriveHistory& drive,
                  const DatasetBuildOptions& options);

/// Cached feature matrix for lookahead sweeps (Fig 12's N = 1..30 AUC
/// curve).
///
/// Only the LABEL depends on the lookahead N; the cumulative
/// feature-extraction pass, the operational/age filters, and the per-row
/// keep draw do not.  The cache therefore walks the fleet ONCE, storing in
/// columnar arrays each candidate row's feature vector, group uid, days-to-
/// event, and its uniform keep draw u in [0,1); materialize(N) then
/// relabels and refilters those rows without touching the fleet again.
///
/// materialize(N) is bit-identical to build_dataset() with
/// options.lookahead_days = N — same rows, same order, same floats —
/// because the keep decision (u < keep_prob) replays the exact per-row RNG
/// draw build_dataset would make (pinned by
/// tests/core/test_dataset_builder.cpp SweepCacheMatchesIndependentBuilds).
/// A row is cached iff it would survive the keep filter for at least one
/// N in [1, max_lookahead], so memory stays proportional to the largest
/// materialized dataset, not to the raw fleet.
class SweepDatasetCache {
 public:
  /// Build the cache by streaming the fleet (parallel, deterministic).
  /// `base.lookahead_days` is ignored — N is chosen per materialize call.
  SweepDatasetCache(const sim::FleetSimulator& fleet, const DatasetBuildOptions& base,
                    int max_lookahead);
  /// Build from an in-memory fleet (tests/examples).
  SweepDatasetCache(const trace::FleetTrace& fleet, const DatasetBuildOptions& base,
                    int max_lookahead);

  /// Dataset for one lookahead window, 1 <= lookahead_days <= max_lookahead().
  [[nodiscard]] ml::Dataset materialize(int lookahead_days) const;

  [[nodiscard]] int max_lookahead() const noexcept { return max_lookahead_; }
  /// Candidate rows held (>= rows of any materialized dataset).
  [[nodiscard]] std::size_t cached_rows() const noexcept { return x_.rows(); }

 private:
  DatasetBuildOptions base_;
  int max_lookahead_ = 1;
  ml::Matrix x_;                        ///< candidate feature rows
  std::vector<std::int32_t> dtf_;       ///< days to labeled event (inclusive bound)
  std::vector<double> keep_u_;          ///< the row's uniform keep draw
  std::vector<std::uint64_t> groups_;   ///< drive uid per row
  std::vector<std::string> feature_names_;
};

}  // namespace ssdfail::core
