#pragma once

// Feature extraction (Section 5.1): for every workload/error statistic we
// include the DAILY value (current behavior) and the CUMULATIVE value
// (lifetime summary), plus drive age, P/E cycles, the read-only flag, and
// the correctable-error rate ("corr err rate", a Fig 16 feature).
//
// Counts are fed RAW (the paper's protocol).  Their heavy tails hurt the
// distance/gradient models even after z-scoring — a real effect that
// contributes to the forest's Table 6 lead.

#include <span>
#include <string>
#include <vector>

#include "store/columnar.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::core {

class FeatureExtractor {
 public:
  /// Feature names in column order (Fig 16 uses these labels).
  [[nodiscard]] static const std::vector<std::string>& names();

  [[nodiscard]] static std::size_t count() { return names().size(); }

  /// Column index of a named feature; throws std::out_of_range if absent.
  [[nodiscard]] static std::size_t index_of(const std::string& name);

  /// Running per-drive state; apply records in day order.
  struct State {
    trace::CumulativeState cum;
    std::uint64_t cum_bad_blocks = 0;      ///< latest observed (already cumulative)
    std::uint32_t prev_bad_blocks = 0;     ///< previous record's cumulative count
    std::uint32_t new_bad_blocks_today = 0;///< delta computed by advance()
    // Class-specific daily channels accumulated over the drive's life
    // (identically zero outside the owning device class).
    std::uint64_t cum_seek_errors = 0;     ///< HDD
    std::uint64_t cum_throttle_events = 0; ///< NVMe
  };

  /// Fold one record into the state (call before extract for that record).
  static void advance(State& state, const trace::DailyRecord& rec) noexcept;

  /// Fill `out` (size count()) with the feature vector for `rec`, given the
  /// state AFTER advance(state, rec).
  static void extract(const trace::DriveHistory& drive, const trace::DailyRecord& rec,
                      const State& state, std::span<float> out);

  /// Column-direct variants reading one row straight from an SSDF2 chunk —
  /// no DailyRecord gather.  Field-for-field identical to the record
  /// overloads (pinned by tests/core/test_chunk_scorer.cpp).
  static void advance(State& state, const store::ChunkView& chunk,
                      std::size_t row) noexcept;
  static void extract(std::int32_t deploy_day, const store::ChunkView& chunk,
                      std::size_t row, const State& state, std::span<float> out);

  /// Index of the raw drive-age column (used by age-split experiments).
  [[nodiscard]] static std::size_t age_index();
};

/// The per-drive online feature state shared by every streaming scorer:
/// OnlineDriveMonitor (serve path) and the telemetry daemon's ingest
/// shards (src/daemon) both advance cumulative state record-by-record and
/// emit one feature row per accepted record.  Factoring the cursor out
/// guarantees the daemon's WAL recovery rebuilds state through the exact
/// code path the live path used — the bit-identity the replay tests pin.
class DriveFeatureCursor {
 public:
  DriveFeatureCursor(trace::DriveModel drive_model, std::int32_t deploy_day);

  /// Fold `rec` into the cumulative state and fill `out` (size
  /// FeatureExtractor::count()) with its feature row.  Records must arrive
  /// in strictly increasing day order; throws std::invalid_argument
  /// otherwise (sanitized streams never trip this).
  void advance_and_extract(const trace::DailyRecord& rec, std::span<float> out);

  [[nodiscard]] std::int32_t last_day() const noexcept { return last_day_; }
  [[nodiscard]] std::uint64_t days_observed() const noexcept { return days_observed_; }
  [[nodiscard]] const FeatureExtractor::State& state() const noexcept { return state_; }

 private:
  trace::DriveHistory header_;  ///< deploy metadata for feature extraction
  FeatureExtractor::State state_;
  std::int32_t last_day_;
  std::uint64_t days_observed_ = 0;
};

/// EXTENSION (paper §7: "improve our prediction models for large N"):
/// trailing-window features summarizing the last kWindowDays of behavior.
/// The paper's features are daily + lifetime-cumulative; a drive's RECENT
/// error trajectory and relative activity level carry the medium-horizon
/// signal that daily snapshots miss.  Enabled via
/// DatasetBuildOptions::rolling_features; evaluated in bench_ext_rolling.
class RollingWindow {
 public:
  static constexpr std::int32_t kWindowDays = 7;

  /// Names of the extra feature columns.
  [[nodiscard]] static const std::vector<std::string>& names();
  [[nodiscard]] static std::size_t count() { return names().size(); }

  /// Fold in one record (records must arrive in day order).
  void advance(const trace::DailyRecord& rec, std::uint32_t new_bad_blocks);

  /// Fill `out` (size count()) with the window features for the most
  /// recently advanced day.
  void extract(std::span<float> out) const;

 private:
  struct DayEntry {
    std::int32_t day = 0;
    std::uint32_t ue = 0;
    std::uint32_t final_read = 0;
    std::uint32_t new_bad_blocks = 0;
    std::uint32_t writes = 0;
    bool any_nontransparent = false;
  };
  void evict(std::int32_t current_day);

  std::vector<DayEntry> window_;  // entries within [current-kWindowDays+1, current]
};

}  // namespace ssdfail::core
