#pragma once

// Online (streaming) failure monitoring: the production embodiment of the
// paper's Section 5 prediction models (beyond the paper's offline study).  A monitor holds the per-drive cumulative
// feature state; each daily record yields a risk score and an optional
// alert against a configured threshold.
//
// FleetMonitor multiplexes monitors across a fleet keyed by drive uid and
// is SHARDED for concurrency: drive state is partitioned into N shards by
// uid hash, each shard with its own mutex, per-shard state map, and
// per-shard metrics block, so observe() calls from many threads contend
// only when they hit the same shard.  The batched path (observe_batch)
// groups a stream of records by shard and scores each shard's group with
// ONE predict_proba matrix call; shards score in parallel on a thread
// pool.  Scores are identical between the sequential and batched paths
// and independent of the shard count (rows are scored row-independently).
//
// Both paths run every record through a per-shard
// robustness::RecordSanitizer first: repairable violations (counter
// regressions, factory-count drift, erase-on-idle garbage) are fixed and
// scored, exact duplicates are dropped, and irreparable records
// (out-of-order days, pre-deploy records, saturated garbage) are
// quarantined to a bounded dead-letter queue.  Neither path throws on bad
// data.  Non-finite model scores are clamped to 1.0 (conservative alert)
// and counted, so a broken model degrades loudly instead of silently.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/features.hpp"
#include "core/fleet_observation.hpp"
#include "core/monitor_metrics.hpp"
#include "ml/classifier.hpp"
#include "parallel/thread_pool.hpp"
#include "robustness/record_sanitizer.hpp"

namespace ssdfail::core {

/// Daily risk assessment for one drive.
struct RiskAssessment {
  float risk = 0.0f;        ///< model score in [0, 1]
  bool alert = false;       ///< risk >= threshold
  bool dropped = false;     ///< record not scored (quarantined or duplicate)
  bool repaired = false;    ///< scored after a sanitizer repair
  bool quarantined = false; ///< routed to the dead-letter queue
};

/// Streaming monitor for a single drive.  Feed records in day order.
class OnlineDriveMonitor {
 public:
  /// The classifier must outlive the monitor and already be fitted.
  OnlineDriveMonitor(const ml::Classifier& model, double threshold,
                     trace::DriveModel drive_model, std::int32_t deploy_day);

  /// Fold in one daily record and score it.  Records must arrive in
  /// strictly increasing day order; throws std::invalid_argument otherwise.
  /// (FleetMonitor pre-sanitizes, so its calls never trip this.)
  RiskAssessment observe(const trace::DailyRecord& record);

  /// Batch-path split of observe(): advance state for `record` and write
  /// its feature row into `out` (size FeatureExtractor::count()) WITHOUT
  /// scoring it — the caller scores many rows with one predict_proba call.
  /// Same day-order contract (and exception) as observe().
  void prepare_row(const trace::DailyRecord& record, std::span<float> out);

  /// Point scoring at a different fitted model (hot model swap).  Feature
  /// state is model-independent, so scores continue seamlessly.
  void rebind(const ml::Classifier& model) noexcept { model_ = &model; }

  [[nodiscard]] std::int32_t last_day() const noexcept { return cursor_.last_day(); }
  [[nodiscard]] std::uint64_t days_observed() const noexcept {
    return cursor_.days_observed();
  }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  const ml::Classifier* model_;
  double threshold_;
  DriveFeatureCursor cursor_;  ///< shared online feature state (features.hpp)
  ml::Matrix row_;
};

/// Sharded fleet-wide monitor: lazily creates a per-drive monitor on first
/// sight; a retired drive's next observation recreates fresh state.
class FleetMonitor {
 public:
  /// `shards` >= 1 partitions drive state for concurrent callers; size it
  /// near the number of scoring threads (scores do not depend on it).
  /// Metrics are interned in `registry` (the process-global registry when
  /// null) under labels {monitor=<instance>, shard=<k>}, so each
  /// FleetMonitor gets its own registry children.
  FleetMonitor(std::shared_ptr<const ml::Classifier> model, double threshold,
               std::size_t shards = 1,
               robustness::SanitizerConfig sanitizer_config = {},
               obs::MetricsRegistry* registry = nullptr);

  /// Observe one record for the given drive (thread-safe; locks only the
  /// drive's shard).  Never throws on bad data: the record is sanitized
  /// first and a quarantined/duplicate record comes back with
  /// `dropped = true` — identical semantics to the batched path.
  RiskAssessment observe(trace::DriveModel drive_model, std::uint32_t drive_index,
                         std::int32_t deploy_day, const trace::DailyRecord& record);

  /// Score a batch: records are grouped by shard, each shard's rows are
  /// scored with one predict_proba call, and shards run in parallel on
  /// `pool` (each worker owns a stripe of shards, so per-shard work stays
  /// sequential and deterministic).  Sanitization semantics are identical
  /// to observe().  Results are positionally aligned with `batch`.
  std::vector<RiskAssessment> observe_batch(
      std::span<const FleetObservation> batch,
      parallel::ThreadPool& pool = parallel::ThreadPool::global());

  /// Drop a drive's state (it was swapped out).  Thread-safe.
  void retire(trace::DriveModel drive_model, std::uint32_t drive_index);

  /// Hot-swap the scoring model (degraded-mode fallback / reload).
  /// Concurrent observers see either model; per-drive feature state
  /// carries over untouched.  Every scoring path rebinds its drive
  /// monitor to a model snapshot it holds alive for the duration of the
  /// call, so the swap is safe without stopping ingestion.
  void set_model(std::shared_ptr<const ml::Classifier> model);

  /// Mark (or clear) degraded mode; surfaced through metrics() and the
  /// monitor_degraded registry gauge.
  void set_degraded(bool degraded) noexcept {
    degraded_.store(degraded, std::memory_order_relaxed);
    degraded_gauge_->set(degraded ? 1.0 : 0.0);
  }
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t drives_tracked() const;
  [[nodiscard]] std::uint64_t alerts_raised() const;

  /// Aggregated counters across all shards (monitor + sanitizer).
  [[nodiscard]] MonitorMetricsSnapshot metrics() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, OnlineDriveMonitor> monitors;
    robustness::RecordSanitizer sanitizer;
    MonitorMetrics metrics;

    Shard(robustness::SanitizerConfig config, obs::MetricsRegistry& registry,
          const obs::Labels& labels)
        : sanitizer(config), metrics(registry, labels) {}
  };

  [[nodiscard]] std::size_t shard_index(std::uint64_t uid) const noexcept;
  /// Find-or-create a drive monitor bound to `model`.  Caller holds the
  /// shard mutex and keeps `model` alive for the duration of the call.
  OnlineDriveMonitor& monitor_for(Shard& shard, std::uint64_t uid,
                                  trace::DriveModel drive_model,
                                  std::int32_t deploy_day,
                                  const ml::Classifier& model);
  /// Clamp a non-finite score to the conservative 1.0 and count it.
  float finite_or_clamp(Shard& shard, float risk);
  void score_shard_batch(const ml::Classifier& model, Shard& shard,
                         std::span<const FleetObservation> batch,
                         const std::vector<std::size_t>& indices,
                         std::vector<RiskAssessment>& out);
  [[nodiscard]] std::shared_ptr<const ml::Classifier> current_model() const;

  mutable std::mutex model_mutex_;  ///< guards model_ swap vs batch snapshot
  std::shared_ptr<const ml::Classifier> model_;
  double threshold_;
  std::atomic<bool> degraded_{false};
  obs::Gauge* degraded_gauge_;  ///< registry mirror of degraded_ (per instance)
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ssdfail::core
