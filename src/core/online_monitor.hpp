#pragma once

// Online (streaming) failure monitoring: the production embodiment of the
// paper's prediction models.  A monitor holds the per-drive cumulative
// feature state; each daily record yields a risk score and an optional
// alert against a configured threshold.
//
// FleetMonitor multiplexes monitors across a fleet keyed by drive uid and
// is SHARDED for concurrency: drive state is partitioned into N shards by
// uid hash, each shard with its own mutex, per-shard state map, and
// per-shard metrics block, so observe() calls from many threads contend
// only when they hit the same shard.  The batched path (observe_batch)
// groups a stream of records by shard and scores each shard's group with
// ONE predict_proba matrix call; shards score in parallel on a thread
// pool.  Scores are identical between the sequential and batched paths
// and independent of the shard count (rows are scored row-independently).

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/features.hpp"
#include "core/monitor_metrics.hpp"
#include "ml/classifier.hpp"
#include "parallel/thread_pool.hpp"

namespace ssdfail::core {

/// Daily risk assessment for one drive.
struct RiskAssessment {
  float risk = 0.0f;    ///< model score in [0, 1]
  bool alert = false;   ///< risk >= threshold
  bool dropped = false; ///< batch path only: record rejected (out of day order)
};

/// Streaming monitor for a single drive.  Feed records in day order.
class OnlineDriveMonitor {
 public:
  /// The classifier must outlive the monitor and already be fitted.
  OnlineDriveMonitor(const ml::Classifier& model, double threshold,
                     trace::DriveModel drive_model, std::int32_t deploy_day);

  /// Fold in one daily record and score it.  Records must arrive in
  /// strictly increasing day order; throws std::invalid_argument otherwise.
  RiskAssessment observe(const trace::DailyRecord& record);

  /// Batch-path split of observe(): advance state for `record` and write
  /// its feature row into `out` (size FeatureExtractor::count()) WITHOUT
  /// scoring it — the caller scores many rows with one predict_proba call.
  /// Same day-order contract (and exception) as observe().
  void prepare_row(const trace::DailyRecord& record, std::span<float> out);

  [[nodiscard]] std::int32_t last_day() const noexcept { return last_day_; }
  [[nodiscard]] std::uint64_t days_observed() const noexcept { return days_observed_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  const ml::Classifier* model_;
  double threshold_;
  trace::DriveHistory header_;  ///< deploy metadata for feature extraction
  FeatureExtractor::State state_;
  ml::Matrix row_;
  std::int32_t last_day_;
  std::uint64_t days_observed_ = 0;
};

/// One drive-day for the batched scoring path.  Records for the same drive
/// must appear in increasing day order within and across batches.
struct FleetObservation {
  trace::DriveModel drive_model = trace::DriveModel::MlcA;
  std::uint32_t drive_index = 0;
  std::int32_t deploy_day = 0;
  trace::DailyRecord record;
};

/// Sharded fleet-wide monitor: lazily creates a per-drive monitor on first
/// sight; a retired drive's next observation recreates fresh state.
class FleetMonitor {
 public:
  /// `shards` >= 1 partitions drive state for concurrent callers; size it
  /// near the number of scoring threads (scores do not depend on it).
  FleetMonitor(std::shared_ptr<const ml::Classifier> model, double threshold,
               std::size_t shards = 1);

  /// Observe one record for the given drive (thread-safe; locks only the
  /// drive's shard).  Throws std::invalid_argument on an out-of-order day.
  RiskAssessment observe(trace::DriveModel drive_model, std::uint32_t drive_index,
                         std::int32_t deploy_day, const trace::DailyRecord& record);

  /// Score a batch: records are grouped by shard, each shard's rows are
  /// scored with one predict_proba call, and shards run in parallel on
  /// `pool` (each worker owns a stripe of shards, so per-shard work stays
  /// sequential and deterministic).  Out-of-order records are dropped and
  /// flagged (`RiskAssessment::dropped`) instead of throwing.  Results are
  /// positionally aligned with `batch`.
  std::vector<RiskAssessment> observe_batch(
      std::span<const FleetObservation> batch,
      parallel::ThreadPool& pool = parallel::ThreadPool::global());

  /// Drop a drive's state (it was swapped out).  Thread-safe.
  void retire(trace::DriveModel drive_model, std::uint32_t drive_index);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t drives_tracked() const;
  [[nodiscard]] std::uint64_t alerts_raised() const;

  /// Aggregated counters across all shards.
  [[nodiscard]] MonitorMetricsSnapshot metrics() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, OnlineDriveMonitor> monitors;
    MonitorMetrics metrics;
  };

  [[nodiscard]] std::size_t shard_index(std::uint64_t uid) const noexcept;
  /// Find-or-create a drive monitor.  Caller holds the shard mutex.
  OnlineDriveMonitor& monitor_for(Shard& shard, std::uint64_t uid,
                                  trace::DriveModel drive_model,
                                  std::int32_t deploy_day);
  void score_shard_batch(Shard& shard, std::span<const FleetObservation> batch,
                         const std::vector<std::size_t>& indices,
                         std::vector<RiskAssessment>& out);

  std::shared_ptr<const ml::Classifier> model_;
  double threshold_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ssdfail::core
