#pragma once

// Online (streaming) failure monitoring: the production embodiment of the
// paper's prediction models.  A monitor holds the per-drive cumulative
// feature state; each daily record yields a risk score and an optional
// alert against a configured threshold.  FleetMonitor multiplexes monitors
// across a fleet keyed by drive uid.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/features.hpp"
#include "ml/classifier.hpp"

namespace ssdfail::core {

/// Daily risk assessment for one drive.
struct RiskAssessment {
  float risk = 0.0f;   ///< model score in [0, 1]
  bool alert = false;  ///< risk >= threshold
};

/// Streaming monitor for a single drive.  Feed records in day order.
class OnlineDriveMonitor {
 public:
  /// The classifier must outlive the monitor and already be fitted.
  OnlineDriveMonitor(const ml::Classifier& model, double threshold,
                     trace::DriveModel drive_model, std::int32_t deploy_day);

  /// Fold in one daily record and score it.  Records must arrive in
  /// strictly increasing day order; throws std::invalid_argument otherwise.
  RiskAssessment observe(const trace::DailyRecord& record);

  [[nodiscard]] std::int32_t last_day() const noexcept { return last_day_; }
  [[nodiscard]] std::uint64_t days_observed() const noexcept { return days_observed_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  const ml::Classifier* model_;
  double threshold_;
  trace::DriveHistory header_;  ///< deploy metadata for feature extraction
  FeatureExtractor::State state_;
  ml::Matrix row_;
  std::int32_t last_day_;
  std::uint64_t days_observed_ = 0;
};

/// Fleet-wide monitor: lazily creates a per-drive monitor on first sight.
class FleetMonitor {
 public:
  FleetMonitor(std::shared_ptr<const ml::Classifier> model, double threshold)
      : model_(std::move(model)), threshold_(threshold) {}

  /// Observe one record for the given drive.
  RiskAssessment observe(trace::DriveModel drive_model, std::uint32_t drive_index,
                         std::int32_t deploy_day, const trace::DailyRecord& record);

  /// Drop a drive's state (it was swapped out).
  void retire(trace::DriveModel drive_model, std::uint32_t drive_index);

  [[nodiscard]] std::size_t drives_tracked() const noexcept { return monitors_.size(); }
  [[nodiscard]] std::uint64_t alerts_raised() const noexcept { return alerts_; }

 private:
  std::shared_ptr<const ml::Classifier> model_;
  double threshold_;
  std::unordered_map<std::uint64_t, OnlineDriveMonitor> monitors_;
  std::uint64_t alerts_ = 0;
};

}  // namespace ssdfail::core
