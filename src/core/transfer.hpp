#pragma once

// Cross-device-class transfer experiments: train a predictor on one device
// class (MLC-SSD / HDD / NVMe-SSD), evaluate it on another, for every
// ordered pair — the heterogeneous-fleet extension of the paper's Table 7
// cross-MODEL study.  Emitted by `ssdfail_cli transfer` and pinned by the
// golden suite and the transfer-gate CI job.
//
// Leak-free diagonal: every class's dataset is split into train/eval
// halves PARTITIONED BY DRIVE (deterministic in (split_seed, drive uid),
// never by row), and every cell — diagonal included — trains on the train
// half and scores the eval half.  The diagonal is therefore a genuine
// held-out same-class measurement, comparable to the off-diagonal cells,
// and the expected structure is DIAGONAL (column) DOMINANCE: for every
// test class, the same-class model beats any foreign-trained model (the
// class-specific symptom channels are zero columns in a foreign-class
// training set, so a transferred model can only lean on the shared
// error/workload features).  Row comparisons are NOT expected to favor
// the diagonal — they compare different evaluation tasks, and some
// classes are intrinsically easier targets (see EXPERIMENTS.md).

#include <array>
#include <cstddef>

#include "core/dataset_builder.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

namespace ssdfail::core {

struct TransferOptions {
  /// Dataset construction shared by every class (class_filter is
  /// overridden per class; leave it empty).
  DatasetBuildOptions build;
  EvalProtocol protocol;
  /// Share of each class's drives assigned to the train half.
  double train_fraction = 0.5;
  std::uint64_t split_seed = 77;
  ml::ModelKind model = ml::ModelKind::kRandomForest;
  std::uint64_t model_seed = 1;
};

/// The AUC matrix plus the per-class dataset shapes behind it.
struct TransferMatrix {
  /// auc[train][test], indexed by DeviceClass values.
  std::array<std::array<double, trace::kNumDeviceClasses>,
             trace::kNumDeviceClasses>
      auc{};
  std::array<std::size_t, trace::kNumDeviceClasses> train_rows{};
  std::array<std::size_t, trace::kNumDeviceClasses> train_positives{};
  std::array<std::size_t, trace::kNumDeviceClasses> eval_rows{};
  std::array<std::size_t, trace::kNumDeviceClasses> eval_positives{};

  [[nodiscard]] double cell(trace::DeviceClass train,
                            trace::DeviceClass test) const noexcept {
    return auc[static_cast<std::size_t>(train)][static_cast<std::size_t>(test)];
  }

  /// True when, for every test class, the same-class AUC strictly beats
  /// every foreign-trained model's AUC on that class (column dominance).
  [[nodiscard]] bool diagonal_dominant() const noexcept;
};

/// A drive-partitioned train/eval split (every row of a drive lands on
/// exactly one side; deterministic in (seed, drive uid)).
struct DriveSplit {
  ml::Dataset train;
  ml::Dataset eval;
};
[[nodiscard]] DriveSplit split_by_drive(const ml::Dataset& data,
                                        double train_fraction,
                                        std::uint64_t seed);

/// The full 3x3 matrix from per-class datasets (index = DeviceClass value).
[[nodiscard]] TransferMatrix cross_class_transfer(
    const std::array<ml::Dataset, trace::kNumDeviceClasses>& per_class,
    const TransferOptions& options = {});

/// Convenience: build each class's dataset from a mixed fleet (via
/// class_filter), then run the matrix.
[[nodiscard]] TransferMatrix cross_class_transfer(
    const trace::FleetTrace& fleet, const TransferOptions& options = {});

}  // namespace ssdfail::core
