#include "core/characterization.hpp"

#include <algorithm>
#include <cmath>

#include "stats/spearman.hpp"

namespace ssdfail::core {
namespace {

constexpr double kDaysPerYear = 365.25;
constexpr double kDaysPerMonth = 30.44;

}  // namespace

std::string_view corr_var_name(CorrVar v) noexcept {
  switch (v) {
    case CorrVar::kErase: return "erase";
    case CorrVar::kFinalRead: return "final read";
    case CorrVar::kFinalWrite: return "final write";
    case CorrVar::kMeta: return "meta";
    case CorrVar::kRead: return "read";
    case CorrVar::kResponse: return "response";
    case CorrVar::kTimeout: return "timeout";
    case CorrVar::kUncorrectable: return "uncorrect.";
    case CorrVar::kWrite: return "write";
    case CorrVar::kPeCycle: return "P/E cycle";
    case CorrVar::kBadBlock: return "bad block";
    case CorrVar::kDriveAge: return "drive age";
  }
  return "?";
}

CharacterizationSuite::CharacterizationSuite(std::int32_t window_days)
    : window_days_(window_days) {
  writes_by_month_.reserve(kMaxMonths);
  for (std::size_t m = 0; m < kMaxMonths; ++m)
    writes_by_month_.emplace_back(4000, 0xF16'7 + m);
  prefailure_ue_counts_.reserve(2 * kLookbackDays);
  for (std::size_t i = 0; i < 2 * kLookbackDays; ++i)
    prefailure_ue_counts_.emplace_back(2000, 0xF16'11 + i);
}

void CharacterizationSuite::add(const trace::DriveHistory& drive) {
  const auto mi = static_cast<std::size_t>(drive.model);
  const DriveTimeline timeline = derive_timeline(drive);

  // ---- Per-day statistics (Table 1, Fig 7, Fig 11 baseline). ----
  IncidenceCounts& inc = incidence_[mi];
  inc.drive_days += drive.records.size();
  for (const auto& rec : drive.records) {
    for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
      if (rec.errors[e] > 0) ++inc.error_days[e];
    if (!rec.inactive()) {
      const auto month = static_cast<std::size_t>(
          std::min<double>((rec.day - drive.deploy_day) / kDaysPerMonth,
                           static_cast<double>(kMaxMonths - 1)));
      writes_by_month_[month].add(static_cast<double>(rec.writes));
    }
  }

  // Fig 11 baseline: chop the record sequence into non-overlapping windows
  // of n observed days; a window "has a UE" if any member day does.
  for (std::size_t n = 1; n < kLookbackDays; ++n) {
    for (std::size_t start = 0; start + n <= drive.records.size(); start += n) {
      ++baseline_windows_[n];
      for (std::size_t k = start; k < start + n; ++k) {
        if (drive.records[k].error(trace::ErrorType::kUncorrectable) > 0) {
          ++baseline_windows_with_ue_[n];
          break;
        }
      }
    }
  }

  // ---- Table 2 columns: end-of-history cumulative values. ----
  {
    const trace::CumulativeState cum = drive.final_cumulative();
    auto push = [&](CorrVar v, double value) {
      corr_columns_[static_cast<std::size_t>(v)].push_back(value);
    };
    push(CorrVar::kErase, static_cast<double>(cum.error(trace::ErrorType::kErase)));
    push(CorrVar::kFinalRead, static_cast<double>(cum.error(trace::ErrorType::kFinalRead)));
    push(CorrVar::kFinalWrite,
         static_cast<double>(cum.error(trace::ErrorType::kFinalWrite)));
    push(CorrVar::kMeta, static_cast<double>(cum.error(trace::ErrorType::kMeta)));
    push(CorrVar::kRead, static_cast<double>(cum.error(trace::ErrorType::kRead)));
    push(CorrVar::kResponse, static_cast<double>(cum.error(trace::ErrorType::kResponse)));
    push(CorrVar::kTimeout, static_cast<double>(cum.error(trace::ErrorType::kTimeout)));
    push(CorrVar::kUncorrectable,
         static_cast<double>(cum.error(trace::ErrorType::kUncorrectable)));
    push(CorrVar::kWrite, static_cast<double>(cum.error(trace::ErrorType::kWrite)));
    const auto* last = drive.records.empty() ? nullptr : &drive.records.back();
    push(CorrVar::kPeCycle, last ? last->pe_cycles : 0.0);
    push(CorrVar::kBadBlock,
         last ? static_cast<double>(last->bad_blocks) + last->factory_bad_blocks : 0.0);
    push(CorrVar::kDriveAge, drive.max_observed_age());
  }

  // ---- Fleet-wide horizons (Fig 1). ----
  max_age_years_.add(drive.max_observed_age() / kDaysPerYear);
  data_count_years_.add(static_cast<double>(drive.records.size()) / kDaysPerYear);

  // ---- Failure incidence (Tables 3/4). ----
  FailureIncidence& fi = failure_incidence_[mi];
  ++fi.drives;
  fi.failures += timeline.failures.size();
  if (!timeline.failures.empty()) ++fi.drives_failed;
  ++failure_count_hist_[std::min(timeline.failures.size(), failure_count_hist_.size() - 1)];

  // ---- Operational periods (Fig 3). ----
  for (const OperationalPeriod& period : timeline.periods) {
    if (period.ended_in_failure)
      op_period_years_.add_observed(period.length() / kDaysPerYear);
    else
      op_period_years_.add_censored();
    op_period_survival_.push_back(
        {period.length() / kDaysPerYear, period.ended_in_failure});
  }

  // ---- Repairs (Fig 5 / Table 5). ----
  for (const RepairVisit& visit : timeline.repairs) {
    if (const auto days = visit.repair_days()) {
      repair_time_[mi].add_observed(static_cast<double>(*days));
      repair_survival_.push_back({static_cast<double>(*days), true});
    } else {
      repair_time_[mi].add_censored();
      // Censoring time: how long the repair was observed not to finish
      // (trace horizon minus the swap day; conservatively >= 1 day).
      const double observed =
          std::max(1.0, static_cast<double>(window_days_ - 1 - visit.swap_day));
      repair_survival_.push_back({observed, false});
    }
  }

  // ---- Exposure for the month/PE failure-rate denominators: a drive
  // counts once per month bin (and once per PE bin) it is observed in. ----
  if (!drive.records.empty()) {
    const double max_month = drive.max_observed_age() / kDaysPerMonth;
    for (std::size_t m = 0; m <= std::min<std::size_t>(
                                static_cast<std::size_t>(max_month), kMaxMonths - 1);
         ++m)
      failure_rate_by_month_.add_exposure(static_cast<double>(m) + 0.5);
    const double pe_last = drive.records.back().pe_cycles;
    for (double pe = 125.0; pe <= std::min(pe_last + 124.0, 5999.0); pe += 250.0)
      failure_rate_by_pe_.add_exposure(pe);
  }

  // ---- Per-failure statistics (Figs 4, 6, 8, 9, 11). ----
  for (const FailureRecord& failure : timeline.failures) {
    nonop_days_.add(static_cast<double>(failure.nonop_days()));
    const double age_months = failure.age_at_failure / kDaysPerMonth;
    failure_age_months_.add(age_months);
    failure_rate_by_month_.add_event(age_months);
    pe_at_failure_all_.add(failure.pe_at_failure);
    (failure.young() ? pe_at_failure_young_ : pe_at_failure_old_)
        .add(failure.pe_at_failure);
    failure_rate_by_pe_.add_event(failure.pe_at_failure);

    // Fig 11: UEs in the lookback window before the failure day.
    const std::size_t yi = failure.young() ? 0 : 1;
    ++failure_counts_by_age_[yi];
    std::int32_t most_recent_ue_offset = -1;
    for (auto it = drive.records.rbegin(); it != drive.records.rend(); ++it) {
      if (it->day > failure.fail_day) continue;
      const std::int32_t offset = failure.fail_day - it->day;
      if (offset >= static_cast<std::int32_t>(kLookbackDays)) break;
      const std::uint32_t ue = it->error(trace::ErrorType::kUncorrectable);
      if (ue > 0) {
        if (most_recent_ue_offset < 0) most_recent_ue_offset = offset;
        prefailure_ue_counts_[yi * kLookbackDays + static_cast<std::size_t>(offset)].add(
            static_cast<double>(ue));
      }
    }
    if (most_recent_ue_offset >= 0)
      for (std::size_t n = static_cast<std::size_t>(most_recent_ue_offset);
           n < kLookbackDays; ++n)
        ++ue_within_counts_[yi][n];
  }

  // ---- Fig 10: end-of-life cumulative UE / bad blocks by drive class. ----
  {
    const trace::CumulativeState cum = drive.final_cumulative();
    DriveClass cls = DriveClass::kNotFailed;
    if (!timeline.failures.empty())
      cls = timeline.failures.front().young() ? DriveClass::kYoungFailed
                                              : DriveClass::kOldFailed;
    const auto ci = static_cast<std::size_t>(cls);
    cum_ue_[ci].add(static_cast<double>(cum.error(trace::ErrorType::kUncorrectable)));
    const auto* last = drive.records.empty() ? nullptr : &drive.records.back();
    cum_bb_[ci].add(last ? static_cast<double>(last->bad_blocks) + last->factory_bad_blocks
                         : 0.0);
  }
}

void CharacterizationSuite::merge(const CharacterizationSuite& other) {
  for (std::size_t m = 0; m < trace::kNumModels; ++m) {
    for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
      incidence_[m].error_days[e] += other.incidence_[m].error_days[e];
    incidence_[m].drive_days += other.incidence_[m].drive_days;
    failure_incidence_[m].drives += other.failure_incidence_[m].drives;
    failure_incidence_[m].drives_failed += other.failure_incidence_[m].drives_failed;
    failure_incidence_[m].failures += other.failure_incidence_[m].failures;
    repair_time_[m].merge(other.repair_time_[m]);
  }
  for (std::size_t v = 0; v < kCorrVars; ++v)
    corr_columns_[v].insert(corr_columns_[v].end(), other.corr_columns_[v].begin(),
                            other.corr_columns_[v].end());
  for (std::size_t i = 0; i < failure_count_hist_.size(); ++i)
    failure_count_hist_[i] += other.failure_count_hist_[i];
  max_age_years_.merge(other.max_age_years_);
  data_count_years_.merge(other.data_count_years_);
  op_period_years_.merge(other.op_period_years_);
  op_period_survival_.insert(op_period_survival_.end(), other.op_period_survival_.begin(),
                             other.op_period_survival_.end());
  repair_survival_.insert(repair_survival_.end(), other.repair_survival_.begin(),
                          other.repair_survival_.end());
  nonop_days_.merge(other.nonop_days_);
  failure_age_months_.merge(other.failure_age_months_);
  failure_rate_by_month_.merge(other.failure_rate_by_month_);
  for (std::size_t m = 0; m < kMaxMonths; ++m)
    writes_by_month_[m].merge(other.writes_by_month_[m]);
  pe_at_failure_all_.merge(other.pe_at_failure_all_);
  pe_at_failure_young_.merge(other.pe_at_failure_young_);
  pe_at_failure_old_.merge(other.pe_at_failure_old_);
  failure_rate_by_pe_.merge(other.failure_rate_by_pe_);
  for (std::size_t c = 0; c < 3; ++c) {
    cum_ue_[c].merge(other.cum_ue_[c]);
    cum_bb_[c].merge(other.cum_bb_[c]);
  }
  for (std::size_t y = 0; y < 2; ++y) {
    failure_counts_by_age_[y] += other.failure_counts_by_age_[y];
    for (std::size_t n = 0; n < kLookbackDays; ++n)
      ue_within_counts_[y][n] += other.ue_within_counts_[y][n];
  }
  for (std::size_t n = 0; n < kLookbackDays; ++n) {
    baseline_windows_[n] += other.baseline_windows_[n];
    baseline_windows_with_ue_[n] += other.baseline_windows_with_ue_[n];
  }
  for (std::size_t i = 0; i < prefailure_ue_counts_.size(); ++i)
    prefailure_ue_counts_[i].merge(other.prefailure_ue_counts_[i]);
}

std::vector<std::vector<double>> CharacterizationSuite::correlation_matrix() const {
  std::vector<std::vector<double>> columns;
  columns.reserve(kCorrVars);
  for (const auto& col : corr_columns_) columns.push_back(col);
  return stats::spearman_matrix(columns);
}

double CharacterizationSuite::ue_within_days(bool young, std::size_t n) const {
  const std::size_t yi = young ? 0 : 1;
  if (failure_counts_by_age_[yi] == 0 || n >= kLookbackDays)
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(ue_within_counts_[yi][n]) /
         static_cast<double>(failure_counts_by_age_[yi]);
}

double CharacterizationSuite::baseline_ue_within_days(std::size_t n) const {
  if (n == 0 || n >= kLookbackDays || baseline_windows_[n] == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(baseline_windows_with_ue_[n]) /
         static_cast<double>(baseline_windows_[n]);
}

const stats::ReservoirSample& CharacterizationSuite::prefailure_ue_counts(
    bool young, std::size_t offset) const {
  return prefailure_ue_counts_[(young ? 0 : 1) * kLookbackDays + offset];
}

std::uint64_t CharacterizationSuite::total_drives() const {
  std::uint64_t n = 0;
  for (const auto& fi : failure_incidence_) n += fi.drives;
  return n;
}

}  // namespace ssdfail::core
