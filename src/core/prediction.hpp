#pragma once

// The paper's evaluation protocol (Section 5.1) as reusable primitives:
// drive-partitioned 5-fold CV, 1:1 training-set downsampling, ROC AUC with
// fold mean ± sd, pooled-fold scores for ROC curves and threshold studies,
// and cross-model transfer evaluation (Table 7).

#include "ml/classifier.hpp"
#include "ml/cross_validation.hpp"
#include "ml/metrics.hpp"

namespace ssdfail::core {

struct EvalProtocol {
  std::size_t folds = 5;
  double train_downsample_ratio = 1.0;  ///< negatives per positive in training
  std::uint64_t seed = 5;
};

/// Cross-validated ROC AUC under the paper's protocol.
[[nodiscard]] ml::CvResult evaluate_auc(const ml::Classifier& model,
                                        const ml::Dataset& data,
                                        const EvalProtocol& protocol = {});

/// Test-fold scores pooled across all folds (each row scored exactly once,
/// by the model that did NOT train on its drive).  Basis for ROC curves
/// (Figs 13/15) and TPR-by-age (Fig 14).
struct PooledScores {
  std::vector<float> scores;
  std::vector<float> labels;
  std::vector<std::size_t> row_indices;  ///< into the original dataset
};
[[nodiscard]] PooledScores pooled_cv_scores(const ml::Classifier& model,
                                            const ml::Dataset& data,
                                            const EvalProtocol& protocol = {});

/// Train on one dataset (downsampled), evaluate AUC on another — the
/// Table 7 off-diagonal cells.
[[nodiscard]] double transfer_auc(const ml::Classifier& model, const ml::Dataset& train,
                                  const ml::Dataset& test,
                                  const EvalProtocol& protocol = {});

/// Feature importance of a random forest trained on the (downsampled)
/// dataset, returned as (name, importance) sorted descending (Fig 16).
struct RankedFeature {
  std::string name;
  double importance = 0.0;
};
[[nodiscard]] std::vector<RankedFeature> forest_feature_importance(
    const ml::Dataset& data, const EvalProtocol& protocol = {});

/// Model-agnostic permutation importance: per feature, the drop in test
/// AUC when that feature's column is shuffled (mean over `repeats`
/// shuffles).  More robust than impurity importance against correlated and
/// high-cardinality features; printed alongside Fig 16's impurity ranking
/// by bench_ablation_importance.  Sorted descending; not normalized (units
/// are AUC points lost).
[[nodiscard]] std::vector<RankedFeature> permutation_importance(
    const ml::Classifier& fitted_model, const ml::Dataset& test,
    std::uint64_t seed = 17, int repeats = 2);

}  // namespace ssdfail::core
