#include "core/failure_timeline.hpp"

#include <algorithm>
#include <limits>

namespace ssdfail::core {

DriveTimeline derive_timeline(const trace::DriveHistory& drive) {
  DriveTimeline timeline;
  const auto& records = drive.records;
  if (records.empty()) return timeline;

  // A drive with no swaps has exactly one censored period and no
  // failures; skip the cumulative-error pass (it only feeds failure
  // records).  Most of a healthy fleet takes this path.
  if (drive.swaps.empty()) {
    timeline.periods.push_back({records.front().day, records.back().day,
                                /*ended_in_failure=*/false});
    return timeline;
  }

  // Running cumulative error state so each failure can capture its
  // cumulative UE count (cheap single pass, index-aligned with records).
  std::vector<std::uint64_t> cum_ue(records.size());
  std::uint64_t ue = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    ue += records[i].error(trace::ErrorType::kUncorrectable);
    cum_ue[i] = ue;
  }

  std::size_t period_start_idx = 0;  // index of first record of current period
  for (const trace::SwapEvent& swap : drive.swaps) {
    // Failure day: last record at or before the swap with read/write
    // activity.  Trailing inactive records belong to post-failure limbo.
    std::optional<std::size_t> fail_idx;
    for (std::size_t i = period_start_idx; i < records.size(); ++i) {
      if (records[i].day >= swap.day) break;
      if (!records[i].inactive()) fail_idx = i;
    }
    if (!fail_idx) {
      // The drive was never seen active before this swap (can happen when a
      // re-entry is swallowed by log loss); anchor to the first record of
      // the period, or skip if there is none.
      bool found = false;
      for (std::size_t i = period_start_idx; i < records.size(); ++i) {
        if (records[i].day >= swap.day) break;
        fail_idx = i;
        found = true;
      }
      if (!found) continue;
    }

    const trace::DailyRecord& fr = records[*fail_idx];
    FailureRecord failure;
    failure.fail_day = fr.day;
    failure.swap_day = swap.day;
    failure.age_at_failure = fr.day - drive.deploy_day;
    failure.pe_at_failure = fr.pe_cycles;
    failure.cum_ue = cum_ue[*fail_idx];
    failure.cum_bad_blocks =
        static_cast<std::uint64_t>(fr.bad_blocks) + fr.factory_bad_blocks;
    timeline.failures.push_back(failure);

    timeline.periods.push_back(
        {records[period_start_idx].day, fr.day, /*ended_in_failure=*/true});

    // Re-entry: the first active record after the swap.
    RepairVisit visit;
    visit.swap_day = swap.day;
    std::size_t next_start = records.size();
    for (std::size_t i = *fail_idx + 1; i < records.size(); ++i) {
      if (records[i].day <= swap.day) continue;
      if (!records[i].inactive()) {
        visit.reentry_day = records[i].day;
        next_start = i;
        break;
      }
    }
    timeline.repairs.push_back(visit);
    period_start_idx = next_start;
    if (period_start_idx >= records.size()) break;
  }

  // Trailing censored period (no failure observed before the horizon).
  if (period_start_idx < records.size()) {
    timeline.periods.push_back({records[period_start_idx].day, records.back().day,
                                /*ended_in_failure=*/false});
  }
  return timeline;
}

std::int32_t days_to_next_failure(const DriveTimeline& timeline, std::int32_t day) {
  for (const FailureRecord& f : timeline.failures)
    if (f.fail_day >= day) return f.fail_day - day;
  return std::numeric_limits<std::int32_t>::max();
}

bool in_failed_state(const DriveTimeline& timeline, std::int32_t day) {
  for (std::size_t i = 0; i < timeline.failures.size(); ++i) {
    const std::int32_t fail = timeline.failures[i].fail_day;
    if (day <= fail) continue;
    // After this failure: failed until re-entry (if any).
    const auto& reentry = timeline.repairs[i].reentry_day;
    if (!reentry || day < *reentry) return true;
  }
  return false;
}

}  // namespace ssdfail::core
