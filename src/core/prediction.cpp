#include "core/prediction.hpp"

#include <algorithm>
#include <cmath>

#include "ml/downsample.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

ml::CvOptions make_cv_options(const EvalProtocol& protocol) {
  ml::CvOptions options;
  options.folds = protocol.folds;
  options.seed = protocol.seed;
  const double ratio = protocol.train_downsample_ratio;
  const std::uint64_t seed = protocol.seed;
  options.train_transform = [ratio, seed](const ml::Dataset& train, std::size_t fold) {
    return ml::downsample_negatives(train, ratio, seed * 1000 + fold);
  };
  return options;
}

}  // namespace

ml::CvResult evaluate_auc(const ml::Classifier& model, const ml::Dataset& data,
                          const EvalProtocol& protocol) {
  return ml::cross_validate(model, data, make_cv_options(protocol));
}

PooledScores pooled_cv_scores(const ml::Classifier& model, const ml::Dataset& data,
                              const EvalProtocol& protocol) {
  const auto splits = ml::group_k_fold(data, protocol.folds, protocol.seed);
  PooledScores pooled;
  for (std::size_t f = 0; f < splits.size(); ++f) {
    if (splits[f].train.empty() || splits[f].test.empty()) continue;
    ml::Dataset train = data.subset(splits[f].train);
    train = ml::downsample_negatives(train, protocol.train_downsample_ratio,
                                     protocol.seed * 1000 + f);
    if (train.positives() == 0 || train.positives() == train.size()) continue;
    const ml::Dataset test = data.subset(splits[f].test);

    auto fold_model = model.clone();
    fold_model->fit(train);
    const auto scores = fold_model->predict_proba(test.x);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      pooled.scores.push_back(scores[i]);
      pooled.labels.push_back(test.y[i]);
      pooled.row_indices.push_back(splits[f].test[i]);
    }
  }
  return pooled;
}

double transfer_auc(const ml::Classifier& model, const ml::Dataset& train,
                    const ml::Dataset& test, const EvalProtocol& protocol) {
  const ml::Dataset down = ml::downsample_negatives(
      train, protocol.train_downsample_ratio, protocol.seed);
  auto fresh = model.clone();
  fresh->fit(down);
  const auto scores = fresh->predict_proba(test.x);
  return ml::roc_auc(scores, test.y);
}

std::vector<RankedFeature> forest_feature_importance(const ml::Dataset& data,
                                                     const EvalProtocol& protocol) {
  const ml::Dataset train =
      ml::downsample_negatives(data, protocol.train_downsample_ratio, protocol.seed);
  ml::RandomForest::Params params;
  params.seed = protocol.seed;
  ml::RandomForest forest(params);
  forest.fit(train);
  const auto importance = forest.feature_importance();

  std::vector<RankedFeature> ranked;
  ranked.reserve(importance.size());
  for (std::size_t f = 0; f < importance.size(); ++f) {
    const std::string name =
        f < data.feature_names.size() ? data.feature_names[f] : "f" + std::to_string(f);
    ranked.push_back({name, importance[f]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedFeature& a, const RankedFeature& b) {
              return a.importance > b.importance;
            });
  return ranked;
}

std::vector<RankedFeature> permutation_importance(const ml::Classifier& fitted_model,
                                                  const ml::Dataset& test,
                                                  std::uint64_t seed, int repeats) {
  test.validate();
  const double baseline = ml::roc_auc(fitted_model.predict_proba(test.x), test.y);

  std::vector<RankedFeature> ranked;
  ranked.reserve(test.features());
  const std::size_t n = test.size();
  for (std::size_t f = 0; f < test.features(); ++f) {
    double drop_sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      ml::Matrix shuffled = test.x;
      stats::Rng rng({seed, f, static_cast<std::uint64_t>(r)});
      // Fisher-Yates on the column only.
      for (std::size_t i = n; i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.uniform_index(i));
        std::swap(shuffled(i - 1, f), shuffled(j, f));
      }
      const double auc = ml::roc_auc(fitted_model.predict_proba(shuffled), test.y);
      drop_sum += baseline - auc;
    }
    const std::string name =
        f < test.feature_names.size() ? test.feature_names[f] : "f" + std::to_string(f);
    ranked.push_back({name, drop_sum / repeats});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedFeature& a, const RankedFeature& b) {
              return a.importance > b.importance;
            });
  return ranked;
}

}  // namespace ssdfail::core
