#pragma once

// The unit of fleet-scoring ingestion (beyond the paper: serving
// infrastructure for its Section 5 models), factored out of
// online_monitor.hpp so stream-level tooling (robustness::FaultInjector,
// replay drivers) can consume the type without depending on the monitor
// itself.

#include <cstdint>

#include "trace/schema.hpp"

namespace ssdfail::core {

/// One drive-day for the scoring paths.  Records for the same drive must
/// appear in increasing day order within and across batches; the sanitizer
/// quarantines the ones that don't.
struct FleetObservation {
  trace::DriveModel drive_model = trace::DriveModel::MlcA;
  std::uint32_t drive_index = 0;
  std::int32_t deploy_day = 0;
  trace::DailyRecord record;

  /// Globally unique drive id across models (matches DriveHistory::uid).
  [[nodiscard]] std::uint64_t uid() const noexcept {
    return (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  }
};

}  // namespace ssdfail::core
