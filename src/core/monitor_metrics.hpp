#pragma once

// Operational counters for the fleet-scoring service (online_monitor.hpp;
// beyond the paper: serving infrastructure for its Section 5 models).
//
// Since the observability layer landed (src/obs/, docs/OBSERVABILITY.md),
// this is a FAÇADE over obs::MetricsRegistry: each shard's counter block
// interns registry families labeled {monitor=<id>, shard=<k>}, hot-path
// increments are the registry's striped lock-free atomics, and score
// latency lands in a registry histogram with the same 40 x 50us layout the
// old mutex-guarded stats::Histogram used (that mutex path is gone).
//
// The snapshot API is unchanged: callers still get a plain, mergeable
// MonitorMetricsSnapshot — snapshot() reads the registry values back and
// reconstructs the stats::Histogram bin-for-bin — while exposition
// (Prometheus text / JSON lines) reads the same families straight from the
// registry for free.
//
// Sanitizer counters (repairs, quarantines, dead letters) live in the
// per-shard robustness::RecordSanitizer under the shard mutex; the fleet
// snapshot folds them in here so one report covers the whole pipeline.

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "robustness/record_sanitizer.hpp"
#include "stats/histogram.hpp"
#include "trace/validation.hpp"

namespace ssdfail::core {

/// Score-latency histogram range: [0, kScoreLatencyMaxUs) microseconds per
/// record; out-of-range observations clamp to the edge bins.
inline constexpr double kScoreLatencyMaxUs = 2000.0;
inline constexpr std::size_t kScoreLatencyBins = 40;

/// Point-in-time aggregate of monitor counters (plain values, mergeable).
struct MonitorMetricsSnapshot {
  std::uint64_t records_scored = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t drives_created = 0;
  std::uint64_t drives_retired = 0;
  std::uint64_t batches_scored = 0;
  std::uint64_t out_of_order_dropped = 0;
  std::uint64_t non_finite_scores = 0;  ///< model emitted NaN/inf; clamped to 1.0
  std::uint64_t drives_tracked = 0;  ///< currently resident (filled by FleetMonitor)
  std::uint64_t shards = 0;          ///< shard count (filled by FleetMonitor)
  bool degraded = false;             ///< serving on the fallback model (FleetMonitor)
  robustness::SanitizerSnapshot sanitizer;  ///< repairs/quarantines/dead letters
  stats::Histogram score_latency_us{0.0, kScoreLatencyMaxUs, kScoreLatencyBins};

  /// Fold another snapshot in (counter sums + histogram merge).
  void merge(const MonitorMetricsSnapshot& other);

  /// Per-record score latency quantile (microseconds) estimated from the
  /// histogram (upper edge of the bin where the cumulative mass crosses q);
  /// 0 when nothing was recorded.
  [[nodiscard]] double latency_quantile_us(double q) const;

  /// Multi-line human-readable dump (the CLI `serve` report).
  [[nodiscard]] std::string to_text() const;
};

/// One shard's counters, registry-backed.  Every increment — including
/// add_score_latency — is lock-free.
class MonitorMetrics {
 public:
  /// Interns this block's families in `registry` under `labels`; the
  /// FleetMonitor passes {monitor=<instance>, shard=<k>} so concurrent
  /// monitors (tests, benches) never share children.  The returned
  /// references are stable for the registry's lifetime, which must cover
  /// this object's.
  MonitorMetrics(obs::MetricsRegistry& registry, const obs::Labels& labels);

  void on_scored(std::uint64_t records, std::uint64_t alerts) noexcept {
    records_scored_.inc(records);
    alerts_raised_.inc(alerts);
  }
  void on_batch() noexcept { batches_scored_.inc(); }
  void on_drive_created() noexcept {
    drives_created_.inc();
    drives_tracked_.add(1.0);
  }
  void on_drive_retired() noexcept {
    drives_retired_.inc();
    drives_tracked_.add(-1.0);
  }
  void on_out_of_order() noexcept { out_of_order_dropped_.inc(); }
  void on_non_finite() noexcept { non_finite_scores_.inc(); }

  /// Record the mean per-record scoring latency for `records` records.
  void add_score_latency(double us_per_record, std::uint64_t records) noexcept {
    latency_us_.observe(us_per_record, records);
  }

  [[nodiscard]] MonitorMetricsSnapshot snapshot() const;

 private:
  obs::Counter& records_scored_;
  obs::Counter& alerts_raised_;
  obs::Counter& drives_created_;
  obs::Counter& drives_retired_;
  obs::Counter& batches_scored_;
  obs::Counter& out_of_order_dropped_;
  obs::Counter& non_finite_scores_;
  obs::Gauge& drives_tracked_;
  obs::Histogram& latency_us_;
};

}  // namespace ssdfail::core
