#pragma once

// Operational counters for the fleet-scoring service (online_monitor.hpp;
// beyond the paper: serving infrastructure for its Section 5 models).
//
// Idiom follows netdata's global-statistics pattern: hot-path increments
// are relaxed atomic fetch-adds on a per-shard counter block; a reader
// builds a snapshot by loading every counter and merging across shards.
// Counters are monotonic, so a snapshot is always internally plausible
// even while writers run.  The score-latency histogram is the one
// non-atomic member; it is guarded by a small mutex taken once per
// scoring call (per batch on the batched path).
//
// Sanitizer counters (repairs, quarantines, dead letters) live in the
// per-shard robustness::RecordSanitizer under the shard mutex; the fleet
// snapshot folds them in here so one report covers the whole pipeline.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "robustness/record_sanitizer.hpp"
#include "stats/histogram.hpp"
#include "trace/validation.hpp"

namespace ssdfail::core {

/// Score-latency histogram range: [0, kScoreLatencyMaxUs) microseconds per
/// record; out-of-range observations clamp to the edge bins.
inline constexpr double kScoreLatencyMaxUs = 2000.0;
inline constexpr std::size_t kScoreLatencyBins = 40;

/// Point-in-time aggregate of monitor counters (plain values, mergeable).
struct MonitorMetricsSnapshot {
  std::uint64_t records_scored = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t drives_created = 0;
  std::uint64_t drives_retired = 0;
  std::uint64_t batches_scored = 0;
  std::uint64_t out_of_order_dropped = 0;
  std::uint64_t non_finite_scores = 0;  ///< model emitted NaN/inf; clamped to 1.0
  std::uint64_t drives_tracked = 0;  ///< currently resident (filled by FleetMonitor)
  std::uint64_t shards = 0;          ///< shard count (filled by FleetMonitor)
  bool degraded = false;             ///< serving on the fallback model (FleetMonitor)
  robustness::SanitizerSnapshot sanitizer;  ///< repairs/quarantines/dead letters
  stats::Histogram score_latency_us{0.0, kScoreLatencyMaxUs, kScoreLatencyBins};

  /// Fold another snapshot in (counter sums + histogram merge).
  void merge(const MonitorMetricsSnapshot& other);

  /// Per-record score latency quantile (microseconds) estimated from the
  /// histogram (upper edge of the bin where the cumulative mass crosses q);
  /// 0 when nothing was recorded.
  [[nodiscard]] double latency_quantile_us(double q) const;

  /// Multi-line human-readable dump (the CLI `serve` report).
  [[nodiscard]] std::string to_text() const;
};

/// One shard's counters.  All increments are lock-free relaxed atomics
/// except add_score_latency, which takes the internal histogram mutex.
class MonitorMetrics {
 public:
  void on_scored(std::uint64_t records, std::uint64_t alerts) noexcept {
    records_scored_.fetch_add(records, std::memory_order_relaxed);
    alerts_raised_.fetch_add(alerts, std::memory_order_relaxed);
  }
  void on_batch() noexcept { batches_scored_.fetch_add(1, std::memory_order_relaxed); }
  void on_drive_created() noexcept {
    drives_created_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_drive_retired() noexcept {
    drives_retired_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_out_of_order() noexcept {
    out_of_order_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_non_finite() noexcept {
    non_finite_scores_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record the mean per-record scoring latency for `records` records.
  void add_score_latency(double us_per_record, std::uint64_t records);

  [[nodiscard]] MonitorMetricsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> records_scored_{0};
  std::atomic<std::uint64_t> alerts_raised_{0};
  std::atomic<std::uint64_t> drives_created_{0};
  std::atomic<std::uint64_t> drives_retired_{0};
  std::atomic<std::uint64_t> batches_scored_{0};
  std::atomic<std::uint64_t> out_of_order_dropped_{0};
  std::atomic<std::uint64_t> non_finite_scores_{0};
  mutable std::mutex latency_mutex_;
  stats::Histogram latency_us_{0.0, kScoreLatencyMaxUs, kScoreLatencyBins};
};

}  // namespace ssdfail::core
