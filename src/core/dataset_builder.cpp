#include "core/dataset_builder.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/failure_timeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"
#include "store/columnar.hpp"
#include "store/sharded.hpp"

namespace ssdfail::core {
namespace {

obs::Counter& chunks_pruned_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "store_chunks_pruned_total", {},
      "columnar chunks skipped by zone-map predicate pushdown");
  return c;
}

/// Uniform drive access for the walk, so one walk implementation serves
/// both backings:
///   RowSource    — a materialized trace::DriveHistory (v1 / in-memory)
///   ColumnSource — a store::ChunkView drive slice, read straight from the
///                  mapped columns with no per-drive materialization
/// Both expose identical VALUES for every accessor, which is what makes
/// the two build paths bit-identical (same records -> same arithmetic).
struct RowSource {
  const trace::DriveHistory& d;
  [[nodiscard]] std::uint64_t uid() const { return d.uid(); }
  [[nodiscard]] std::int32_t deploy_day() const { return d.deploy_day; }
  [[nodiscard]] std::size_t size() const { return d.records.size(); }
  [[nodiscard]] const trace::DailyRecord& record(std::size_t i) const { return d.records[i]; }
  [[nodiscard]] std::int32_t day(std::size_t i) const { return d.records[i].day; }
  [[nodiscard]] std::uint32_t error(std::size_t i, trace::ErrorType type) const {
    return d.records[i].error(type);
  }
  [[nodiscard]] std::uint32_t bad_blocks(std::size_t i) const { return d.records[i].bad_blocks; }
};

struct ColumnSource {
  const store::ChunkView& chunk;
  const store::DriveRef& ref;
  [[nodiscard]] std::uint64_t uid() const { return ref.uid(); }
  [[nodiscard]] std::int32_t deploy_day() const { return ref.deploy_day; }
  [[nodiscard]] std::size_t size() const { return ref.row_count; }
  [[nodiscard]] trace::DailyRecord record(std::size_t i) const {
    return chunk.record(ref.row_begin + i);
  }
  [[nodiscard]] std::int32_t day(std::size_t i) const { return chunk.day[ref.row_begin + i]; }
  [[nodiscard]] std::uint32_t error(std::size_t i, trace::ErrorType type) const {
    return chunk.errors[static_cast<std::size_t>(type)][ref.row_begin + i];
  }
  [[nodiscard]] std::uint32_t bad_blocks(std::size_t i) const {
    return chunk.bad_blocks[ref.row_begin + i];
  }
};

/// Per-record "days until next occurrence of error type e" (exclusive of
/// the current day), computed right-to-left; INT32_MAX when none follows.
template <typename Source>
std::vector<std::int32_t> days_to_next_error(const Source& src, trace::ErrorType type) {
  std::vector<std::int32_t> out(src.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = src.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - src.day(i);
    if (src.error(i, type) > 0) next_day = src.day(i);
  }
  return out;
}

/// Per-record "days until the cumulative bad-block count next increases"
/// (exclusive of the current day); INT32_MAX when it never does.
template <typename Source>
std::vector<std::int32_t> days_to_next_bad_block(const Source& src) {
  std::vector<std::int32_t> out(src.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = src.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - src.day(i);
    const bool grew = i > 0 ? src.bad_blocks(i) > src.bad_blocks(i - 1)
                            : src.bad_blocks(i) > 0;
    if (grew) next_day = src.day(i);
  }
  return out;
}

/// Feature names implied by the options (base features, plus the rolling
/// window block when enabled).
std::vector<std::string> option_feature_names(const DatasetBuildOptions& options) {
  std::vector<std::string> names = FeatureExtractor::names();
  if (options.rolling_features) {
    const auto& extra = RollingWindow::names();
    names.insert(names.end(), extra.begin(), extra.end());
  }
  return names;
}

/// Final shape-up shared by every build path: fill in the schema when no
/// drive contributed one, and give a rowless matrix the schema's column
/// count so an empty fleet still yields a dataset that validates.
void finalize_dataset(ml::Dataset& out, const DatasetBuildOptions& options) {
  if (out.feature_names.empty()) out.feature_names = option_feature_names(options);
  if (out.x.rows() == 0) out.x = ml::Matrix(0, out.feature_names.size());
  out.validate();
}

/// The single per-drive walk behind append_drive AND SweepDatasetCache:
/// advance the cumulative feature state day by day, apply every
/// lookahead-INDEPENDENT filter (model, failed-state limbo, age), and hand
/// each candidate row to the sink as
///
///   sink(days_to_event, keep_draw_u, get_row)
///
/// where get_row() lazily extracts the feature vector (extraction is the
/// expensive part; sinks that drop the row based on (dtf, u) alone never
/// pay for it) and returns a span valid until the next record.
/// `days_to_event` carries the unified inclusive-boundary convention
/// documented on DatasetBuildOptions::lookahead_days: a row is positive
/// for window N iff days_to_event <= N.  `keep_draw_u` is the row's
/// uniform draw in [0, 1); build keeps the row for keep probability p iff
/// p >= 1 or u < p — exactly the bernoulli(p) decision the pre-cache
/// builder made, so cached and direct builds agree bit-for-bit.
template <typename Source, typename Sink>
void walk_source(const Source& src, const trace::DriveHistory& extract_drive,
                 const DriveTimeline& timeline, const DatasetBuildOptions& options,
                 Sink&& sink) {
  if (options.error_label && options.bad_block_label)
    throw std::invalid_argument(
        "DatasetBuildOptions: error_label and bad_block_label are exclusive");

  std::vector<std::int32_t> error_dtf;
  if (options.error_label) error_dtf = days_to_next_error(src, *options.error_label);
  if (options.bad_block_label) error_dtf = days_to_next_bad_block(src);

  FeatureExtractor::State state;
  RollingWindow rolling;
  const std::size_t base_count = FeatureExtractor::count();
  std::vector<float> row(base_count +
                         (options.rolling_features ? RollingWindow::count() : 0));
  // Drive-constant RNG prefix: the per-row stream is keyed
  // {seed, uid, day}; folding the first two keys once per drive replays
  // hash_keys({seed, uid, day}) exactly (see stats::hash_fold).
  const std::uint64_t rng_prefix =
      stats::hash_fold(stats::hash_fold(stats::kHashKeysInit, options.seed), src.uid());
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Binds a reference for RowSource and lifetime-extends the by-value
    // record a ColumnSource assembles from the mapped columns.
    const trace::DailyRecord& rec = src.record(i);
    FeatureExtractor::advance(state, rec);
    if (options.rolling_features) rolling.advance(rec, state.new_bad_blocks_today);
    if (in_failed_state(timeline, rec.day)) continue;

    const std::int32_t age = rec.day - src.deploy_day();
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kYoungOnly &&
        age > kInfantAgeDays)
      continue;
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kOldOnly &&
        age <= kInfantAgeDays)
      continue;
    // Prediction-time day window (label maturation / retraining windows).
    // Only emission is windowed; the cumulative state above already
    // advanced, so windowed rows are bit-identical to the unwindowed
    // build's matching subset.
    if (options.min_day && rec.day < *options.min_day) continue;
    if (options.max_day && rec.day > *options.max_day) continue;

    // Unified boundary convention (see DatasetBuildOptions::lookahead_days):
    // a drive-day at day d is positive iff the labeled event occurs on or
    // before day d+N.  Both label kinds use the same inclusive upper bound;
    // they differ only in whether day d itself can be the event day
    // (failure: yes, dtf == 0; error/bad-block: no, today's count is a
    // feature, and error_dtf is computed exclusive of the current day).
    const std::int32_t dtf = (options.error_label || options.bad_block_label)
                                 ? error_dtf[i]
                                 : days_to_next_failure(timeline, rec.day);

    stats::Rng row_rng(stats::hash_fold(rng_prefix, static_cast<std::uint64_t>(rec.day)));
    const double u = row_rng.uniform();

    const auto get_row = [&]() -> std::span<const float> {
      FeatureExtractor::extract(extract_drive, rec, state,
                                std::span<float>(row).first(base_count));
      if (options.rolling_features)
        rolling.extract(std::span<float>(row).subspan(base_count));
      return row;
    };
    sink(dtf, u, get_row);
  }
}

/// Drive-level swap-range filter: true when at least one swap day falls in
/// [min_swap_day, max_swap_day].  The chunk-granular mirror of this check is
/// ScanPredicate::{min_swap_day,max_swap_day} zone-map pruning.
bool swap_range_admits(const DatasetBuildOptions& options,
                       std::span<const std::int32_t> swap_days) noexcept {
  if (!options.wants_swap_range()) return true;
  for (const std::int32_t d : swap_days) {
    if (options.min_swap_day && d < *options.min_swap_day) continue;
    if (options.max_swap_day && d > *options.max_swap_day) continue;
    return true;
  }
  return false;
}

template <typename Sink>
void walk_drive(const trace::DriveHistory& drive, const DatasetBuildOptions& options,
                Sink&& sink) {
  if (options.model_filter && *options.model_filter != drive.model) return;
  if (options.class_filter &&
      trace::device_class(drive.model) != *options.class_filter)
    return;
  if (options.wants_swap_range()) {
    bool hit = false;
    for (const trace::SwapEvent& s : drive.swaps) {
      if (options.min_swap_day && s.day < *options.min_swap_day) continue;
      if (options.max_swap_day && s.day > *options.max_swap_day) continue;
      hit = true;
      break;
    }
    if (!hit) return;
  }
  const DriveTimeline timeline = derive_timeline(drive);
  walk_source(RowSource{drive}, drive, timeline, options, std::forward<Sink>(sink));
}

/// bernoulli(keep_prob) decision replayed from the row's stored draw.
bool keeps_row(double keep_prob, double u) noexcept {
  return keep_prob >= 1.0 || u < keep_prob;
}

/// The sink shared by append_drive and the columnar fused walk: label,
/// replay the keep decision, and push the surviving row.
auto dataset_sink(ml::Dataset& out, std::uint64_t uid, const DatasetBuildOptions& options) {
  return [&out, uid, &options](std::int32_t dtf, double u, auto&& get_row) {
    const bool positive = dtf <= options.lookahead_days;
    const double keep_prob =
        positive ? options.positive_keep_prob : options.negative_keep_prob;
    if (!keeps_row(keep_prob, u)) return;
    out.x.push_row(get_row());
    out.y.push_back(positive ? 1.0f : 0.0f);
    out.groups.push_back(uid);
  };
}

/// Fold one column-backed drive into the dataset without materializing it.
/// Only for drives with NO swaps: their timeline is a single censored
/// period (exactly what derive_timeline computes in that case), so the
/// whole walk can run off the mapped columns.  Drives with swaps take the
/// gather + append_drive path, keeping failure-timeline derivation in one
/// implementation.
void append_columnar_drive(ml::Dataset& out, const store::ChunkView& chunk,
                           const store::DriveRef& ref, const DatasetBuildOptions& options) {
  if (out.feature_names.empty()) out.feature_names = option_feature_names(options);
  DriveTimeline timeline;
  if (ref.row_count > 0)
    timeline.periods.push_back({chunk.day[ref.row_begin],
                                chunk.day[ref.row_begin + ref.row_count - 1],
                                /*ended_in_failure=*/false});
  // FeatureExtractor::extract reads only identity scalars from the drive
  // (deploy_day); hand it a recordless shim rather than a gathered copy.
  trace::DriveHistory shim;
  shim.model = ref.model;
  shim.drive_index = ref.drive_index;
  shim.deploy_day = ref.deploy_day;
  walk_source(ColumnSource{chunk, ref}, shim, timeline, options,
              dataset_sink(out, ref.uid(), options));
}

}  // namespace

void append_drive(ml::Dataset& out, const trace::DriveHistory& drive,
                  const DatasetBuildOptions& options) {
  if (options.lookahead_days < 1)
    throw std::invalid_argument("DatasetBuildOptions: lookahead_days must be >= 1");
  if (out.feature_names.empty()) out.feature_names = option_feature_names(options);

  walk_drive(drive, options, dataset_sink(out, drive.uid(), options));
}

ml::Dataset build_dataset(const sim::FleetSimulator& fleet,
                          const DatasetBuildOptions& options) {
  auto result = fleet.visit(
      [] { return ml::Dataset{}; },
      [&](ml::Dataset& acc, const trace::DriveHistory& drive) {
        append_drive(acc, drive, options);
      },
      [](ml::Dataset& dst, const ml::Dataset& src) {
        dst.x.append_rows(src.x);
        dst.y.insert(dst.y.end(), src.y.begin(), src.y.end());
        dst.groups.insert(dst.groups.end(), src.groups.begin(), src.groups.end());
        if (dst.feature_names.empty()) dst.feature_names = src.feature_names;
      });
  finalize_dataset(result, options);
  return result;
}

ml::Dataset build_dataset(const trace::FleetTrace& fleet,
                          const DatasetBuildOptions& options) {
  ml::Dataset out;
  for (const auto& drive : fleet.drives) append_drive(out, drive, options);
  finalize_dataset(out, options);
  return out;
}

ml::Dataset build_dataset(const store::ColumnarFleetView& fleet,
                          const DatasetBuildOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("core.build_dataset_columnar");
  obs::Span span(kSite);
  if (options.lookahead_days < 1)
    throw std::invalid_argument("DatasetBuildOptions: lookahead_days must be >= 1");

  // One partial dataset per chunk, merged in chunk order below; the writer
  // preserves fleet order across chunks, so the merged row order matches
  // the sequential row-path build exactly.
  // Zone-map pushdown: a chunk whose zone map proves "no drive of the
  // filtered model" never gets touched (and, for v3, never gets decoded).
  // Pruning is exactly the per-drive model filter below hoisted to chunk
  // granularity, so the surviving row set is identical.
  store::ScanPredicate predicate;
  predicate.model = options.model_filter;
  predicate.device_class = options.class_filter;
  predicate.min_day = options.min_day;
  predicate.max_day = options.max_day;
  predicate.min_swap_day = options.min_swap_day;
  predicate.max_swap_day = options.max_swap_day;

  std::vector<ml::Dataset> partials(fleet.chunk_count());
  const auto build_chunk = [&fleet, &options, &partials, &predicate](std::size_t c) {
    if (!fleet.zone_map(c).may_match(predicate)) {
      chunks_pruned_counter().inc();
      return;
    }
    const store::ChunkView& chunk = fleet.chunk(c);
    trace::DriveHistory scratch;
    for (const store::DriveRef& ref : chunk.drives) {
      // Filter pushdown: the drive index answers the model/class filters
      // without touching a single column byte.
      if (options.model_filter && *options.model_filter != ref.model) continue;
      if (options.class_filter &&
          trace::device_class(ref.model) != *options.class_filter)
        continue;
      // Swap-range drive filter: answered from the chunk's swap slots (the
      // per-drive mirror of the zone-map pruning above).
      if (!swap_range_admits(options,
                             chunk.swap_days.subspan(ref.swap_begin, ref.swap_count)))
        continue;
      if (ref.swap_count == 0) {
        append_columnar_drive(partials[c], chunk, ref, options);
      } else {
        chunk.gather_drive(ref, scratch);
        append_drive(partials[c], scratch, options);
      }
    }
  };
  // Same sequential degradation as parallel_for: one worker (or one
  // chunk) means TaskGroup handoff is pure overhead.
  parallel::ThreadPool& pool = parallel::ThreadPool::current();
  if (pool.size() <= 1 || fleet.chunk_count() <= 1 || pool.on_worker_thread()) {
    for (std::size_t c = 0; c < fleet.chunk_count(); ++c) build_chunk(c);
  } else {
    parallel::TaskGroup group(pool);
    for (std::size_t c = 0; c < fleet.chunk_count(); ++c)
      group.submit([&build_chunk, c] { build_chunk(c); });
    group.wait();
  }

  ml::Dataset out;
  for (const ml::Dataset& partial : partials) {
    out.x.append_rows(partial.x);
    out.y.insert(out.y.end(), partial.y.begin(), partial.y.end());
    out.groups.insert(out.groups.end(), partial.groups.begin(), partial.groups.end());
    if (out.feature_names.empty()) out.feature_names = partial.feature_names;
  }
  finalize_dataset(out, options);
  return out;
}

ml::Dataset build_dataset(const store::ShardedFleetView& fleet,
                          const DatasetBuildOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("core.build_dataset_sharded");
  obs::Span span(kSite);
  // Every per-row decision is keyed by (seed, drive uid, day), so building
  // shard by shard in manifest order yields exactly the rows a single-file
  // build of the concatenated fleet would (finalize_dataset is per-row).
  ml::Dataset out;
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    ml::Dataset part = build_dataset(fleet.shard(s), options);
    out.x.append_rows(part.x);
    out.y.insert(out.y.end(), part.y.begin(), part.y.end());
    out.groups.insert(out.groups.end(), part.groups.begin(), part.groups.end());
    if (out.feature_names.empty()) out.feature_names = std::move(part.feature_names);
  }
  finalize_dataset(out, options);
  return out;
}

namespace {

/// Per-worker partial of the sweep cache's columnar arrays.
struct CacheColumns {
  ml::Matrix x;
  std::vector<std::int32_t> dtf;
  std::vector<double> keep_u;
  std::vector<std::uint64_t> groups;

  void append(const CacheColumns& other) {
    x.append_rows(other.x);
    dtf.insert(dtf.end(), other.dtf.begin(), other.dtf.end());
    keep_u.insert(keep_u.end(), other.keep_u.begin(), other.keep_u.end());
    groups.insert(groups.end(), other.groups.begin(), other.groups.end());
  }
};

/// Cache one drive's candidate rows: everything that survives the keep
/// filter for at least one window N in [1, max_lookahead].
void append_drive_to_cache(CacheColumns& out, const trace::DriveHistory& drive,
                           const DatasetBuildOptions& options, int max_lookahead) {
  walk_drive(drive, options, [&](std::int32_t dtf, double u, auto&& get_row) {
    // Across the sweep the row is positive for N >= dtf and negative
    // below; cache it iff either class's keep filter would admit it.
    const bool ever_positive = dtf <= max_lookahead;
    const bool kept = (ever_positive && keeps_row(options.positive_keep_prob, u)) ||
                      keeps_row(options.negative_keep_prob, u);
    if (!kept) return;
    out.x.push_row(get_row());
    out.dtf.push_back(dtf);
    out.keep_u.push_back(u);
    out.groups.push_back(drive.uid());
  });
}

}  // namespace

SweepDatasetCache::SweepDatasetCache(const sim::FleetSimulator& fleet,
                                     const DatasetBuildOptions& base, int max_lookahead)
    : base_(base), max_lookahead_(max_lookahead) {
  if (max_lookahead < 1)
    throw std::invalid_argument("SweepDatasetCache: max_lookahead must be >= 1");
  CacheColumns columns = fleet.visit(
      [] { return CacheColumns{}; },
      [&](CacheColumns& acc, const trace::DriveHistory& drive) {
        append_drive_to_cache(acc, drive, base_, max_lookahead_);
      },
      [](CacheColumns& dst, const CacheColumns& src) { dst.append(src); });
  x_ = std::move(columns.x);
  dtf_ = std::move(columns.dtf);
  keep_u_ = std::move(columns.keep_u);
  groups_ = std::move(columns.groups);
  feature_names_ = option_feature_names(base_);
}

SweepDatasetCache::SweepDatasetCache(const trace::FleetTrace& fleet,
                                     const DatasetBuildOptions& base, int max_lookahead)
    : base_(base), max_lookahead_(max_lookahead) {
  if (max_lookahead < 1)
    throw std::invalid_argument("SweepDatasetCache: max_lookahead must be >= 1");
  CacheColumns columns;
  for (const auto& drive : fleet.drives)
    append_drive_to_cache(columns, drive, base_, max_lookahead_);
  x_ = std::move(columns.x);
  dtf_ = std::move(columns.dtf);
  keep_u_ = std::move(columns.keep_u);
  groups_ = std::move(columns.groups);
  feature_names_ = option_feature_names(base_);
}

ml::Dataset SweepDatasetCache::materialize(int lookahead_days) const {
  if (lookahead_days < 1 || lookahead_days > max_lookahead_)
    throw std::invalid_argument(
        "SweepDatasetCache: lookahead_days must be in [1, " +
        std::to_string(max_lookahead_) + "], got " + std::to_string(lookahead_days));
  ml::Dataset out;
  out.feature_names = feature_names_;
  for (std::size_t i = 0; i < x_.rows(); ++i) {
    const bool positive = dtf_[i] <= lookahead_days;
    const double keep_prob =
        positive ? base_.positive_keep_prob : base_.negative_keep_prob;
    if (!keeps_row(keep_prob, keep_u_[i])) continue;
    out.x.push_row(x_.row(i));
    out.y.push_back(positive ? 1.0f : 0.0f);
    out.groups.push_back(groups_[i]);
  }
  out.validate();
  return out;
}

}  // namespace ssdfail::core
