#include "core/dataset_builder.hpp"

#include <limits>
#include <stdexcept>

#include "core/failure_timeline.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

/// Per-record "days until next occurrence of error type e" (exclusive of
/// the current day), computed right-to-left; INT32_MAX when none follows.
std::vector<std::int32_t> days_to_next_error(const trace::DriveHistory& drive,
                                             trace::ErrorType type) {
  const auto& records = drive.records;
  std::vector<std::int32_t> out(records.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = records.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - records[i].day;
    if (records[i].error(type) > 0) next_day = records[i].day;
  }
  return out;
}

/// Per-record "days until the cumulative bad-block count next increases"
/// (exclusive of the current day); INT32_MAX when it never does.
std::vector<std::int32_t> days_to_next_bad_block(const trace::DriveHistory& drive) {
  const auto& records = drive.records;
  std::vector<std::int32_t> out(records.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = records.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - records[i].day;
    const bool grew = i > 0 ? records[i].bad_blocks > records[i - 1].bad_blocks
                            : records[i].bad_blocks > 0;
    if (grew) next_day = records[i].day;
  }
  return out;
}

}  // namespace

void append_drive(ml::Dataset& out, const trace::DriveHistory& drive,
                  const DatasetBuildOptions& options) {
  if (options.lookahead_days < 1)
    throw std::invalid_argument("DatasetBuildOptions: lookahead_days must be >= 1");
  if (options.model_filter && *options.model_filter != drive.model) return;
  if (out.feature_names.empty()) {
    out.feature_names = FeatureExtractor::names();
    if (options.rolling_features) {
      const auto& extra = RollingWindow::names();
      out.feature_names.insert(out.feature_names.end(), extra.begin(), extra.end());
    }
  }

  if (options.error_label && options.bad_block_label)
    throw std::invalid_argument(
        "DatasetBuildOptions: error_label and bad_block_label are exclusive");

  const DriveTimeline timeline = derive_timeline(drive);
  std::vector<std::int32_t> error_dtf;
  if (options.error_label) error_dtf = days_to_next_error(drive, *options.error_label);
  if (options.bad_block_label) error_dtf = days_to_next_bad_block(drive);

  FeatureExtractor::State state;
  RollingWindow rolling;
  const std::size_t base_count = FeatureExtractor::count();
  std::vector<float> row(base_count +
                         (options.rolling_features ? RollingWindow::count() : 0));
  for (std::size_t i = 0; i < drive.records.size(); ++i) {
    const trace::DailyRecord& rec = drive.records[i];
    FeatureExtractor::advance(state, rec);
    if (options.rolling_features) rolling.advance(rec, state.new_bad_blocks_today);
    if (in_failed_state(timeline, rec.day)) continue;

    const std::int32_t age = rec.day - drive.deploy_day;
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kYoungOnly &&
        age > kInfantAgeDays)
      continue;
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kOldOnly &&
        age <= kInfantAgeDays)
      continue;

    // Unified boundary convention (see DatasetBuildOptions::lookahead_days):
    // a drive-day at day d is positive iff the labeled event occurs on or
    // before day d+N.  Both label kinds use the same inclusive upper bound;
    // they differ only in whether day d itself can be the event day
    // (failure: yes, dtf == 0; error/bad-block: no, today's count is a
    // feature, and error_dtf is computed exclusive of the current day).
    bool positive = false;
    if (options.error_label || options.bad_block_label) {
      positive = error_dtf[i] <= options.lookahead_days;
    } else {
      const std::int32_t dtf = days_to_next_failure(timeline, rec.day);
      positive = dtf <= options.lookahead_days;
    }

    const double keep_prob =
        positive ? options.positive_keep_prob : options.negative_keep_prob;
    if (keep_prob < 1.0) {
      stats::Rng row_rng({options.seed, drive.uid(), static_cast<std::uint64_t>(rec.day)});
      if (!row_rng.bernoulli(keep_prob)) continue;
    }

    FeatureExtractor::extract(drive, rec, state,
                              std::span<float>(row).first(base_count));
    if (options.rolling_features)
      rolling.extract(std::span<float>(row).subspan(base_count));
    out.x.push_row(row);
    out.y.push_back(positive ? 1.0f : 0.0f);
    out.groups.push_back(drive.uid());
  }
}

ml::Dataset build_dataset(const sim::FleetSimulator& fleet,
                          const DatasetBuildOptions& options) {
  auto result = fleet.visit(
      [] { return ml::Dataset{}; },
      [&](ml::Dataset& acc, const trace::DriveHistory& drive) {
        append_drive(acc, drive, options);
      },
      [](ml::Dataset& dst, const ml::Dataset& src) {
        dst.x.append_rows(src.x);
        dst.y.insert(dst.y.end(), src.y.begin(), src.y.end());
        dst.groups.insert(dst.groups.end(), src.groups.begin(), src.groups.end());
        if (dst.feature_names.empty()) dst.feature_names = src.feature_names;
      });
  if (result.feature_names.empty()) result.feature_names = FeatureExtractor::names();
  result.validate();
  return result;
}

ml::Dataset build_dataset(const trace::FleetTrace& fleet,
                          const DatasetBuildOptions& options) {
  ml::Dataset out;
  for (const auto& drive : fleet.drives) append_drive(out, drive, options);
  if (out.feature_names.empty()) out.feature_names = FeatureExtractor::names();
  out.validate();
  return out;
}

}  // namespace ssdfail::core
