#include "core/dataset_builder.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/failure_timeline.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

/// Per-record "days until next occurrence of error type e" (exclusive of
/// the current day), computed right-to-left; INT32_MAX when none follows.
std::vector<std::int32_t> days_to_next_error(const trace::DriveHistory& drive,
                                             trace::ErrorType type) {
  const auto& records = drive.records;
  std::vector<std::int32_t> out(records.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = records.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - records[i].day;
    if (records[i].error(type) > 0) next_day = records[i].day;
  }
  return out;
}

/// Per-record "days until the cumulative bad-block count next increases"
/// (exclusive of the current day); INT32_MAX when it never does.
std::vector<std::int32_t> days_to_next_bad_block(const trace::DriveHistory& drive) {
  const auto& records = drive.records;
  std::vector<std::int32_t> out(records.size(), std::numeric_limits<std::int32_t>::max());
  std::int32_t next_day = -1;
  for (std::size_t i = records.size(); i-- > 0;) {
    if (next_day >= 0) out[i] = next_day - records[i].day;
    const bool grew = i > 0 ? records[i].bad_blocks > records[i - 1].bad_blocks
                            : records[i].bad_blocks > 0;
    if (grew) next_day = records[i].day;
  }
  return out;
}

/// Feature names implied by the options (base features, plus the rolling
/// window block when enabled).
std::vector<std::string> option_feature_names(const DatasetBuildOptions& options) {
  std::vector<std::string> names = FeatureExtractor::names();
  if (options.rolling_features) {
    const auto& extra = RollingWindow::names();
    names.insert(names.end(), extra.begin(), extra.end());
  }
  return names;
}

/// The single per-drive walk behind append_drive AND SweepDatasetCache:
/// advance the cumulative feature state day by day, apply every
/// lookahead-INDEPENDENT filter (model, failed-state limbo, age), and hand
/// each candidate row to the sink as
///
///   sink(days_to_event, keep_draw_u, get_row)
///
/// where get_row() lazily extracts the feature vector (extraction is the
/// expensive part; sinks that drop the row based on (dtf, u) alone never
/// pay for it) and returns a span valid until the next record.
/// `days_to_event` carries the unified inclusive-boundary convention
/// documented on DatasetBuildOptions::lookahead_days: a row is positive
/// for window N iff days_to_event <= N.  `keep_draw_u` is the row's
/// uniform draw in [0, 1); build keeps the row for keep probability p iff
/// p >= 1 or u < p — exactly the bernoulli(p) decision the pre-cache
/// builder made, so cached and direct builds agree bit-for-bit.
template <typename Sink>
void walk_drive(const trace::DriveHistory& drive, const DatasetBuildOptions& options,
                Sink&& sink) {
  if (options.model_filter && *options.model_filter != drive.model) return;
  if (options.error_label && options.bad_block_label)
    throw std::invalid_argument(
        "DatasetBuildOptions: error_label and bad_block_label are exclusive");

  const DriveTimeline timeline = derive_timeline(drive);
  std::vector<std::int32_t> error_dtf;
  if (options.error_label) error_dtf = days_to_next_error(drive, *options.error_label);
  if (options.bad_block_label) error_dtf = days_to_next_bad_block(drive);

  FeatureExtractor::State state;
  RollingWindow rolling;
  const std::size_t base_count = FeatureExtractor::count();
  std::vector<float> row(base_count +
                         (options.rolling_features ? RollingWindow::count() : 0));
  for (std::size_t i = 0; i < drive.records.size(); ++i) {
    const trace::DailyRecord& rec = drive.records[i];
    FeatureExtractor::advance(state, rec);
    if (options.rolling_features) rolling.advance(rec, state.new_bad_blocks_today);
    if (in_failed_state(timeline, rec.day)) continue;

    const std::int32_t age = rec.day - drive.deploy_day;
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kYoungOnly &&
        age > kInfantAgeDays)
      continue;
    if (options.age_filter == DatasetBuildOptions::AgeFilter::kOldOnly &&
        age <= kInfantAgeDays)
      continue;

    // Unified boundary convention (see DatasetBuildOptions::lookahead_days):
    // a drive-day at day d is positive iff the labeled event occurs on or
    // before day d+N.  Both label kinds use the same inclusive upper bound;
    // they differ only in whether day d itself can be the event day
    // (failure: yes, dtf == 0; error/bad-block: no, today's count is a
    // feature, and error_dtf is computed exclusive of the current day).
    const std::int32_t dtf = (options.error_label || options.bad_block_label)
                                 ? error_dtf[i]
                                 : days_to_next_failure(timeline, rec.day);

    stats::Rng row_rng({options.seed, drive.uid(), static_cast<std::uint64_t>(rec.day)});
    const double u = row_rng.uniform();

    const auto get_row = [&]() -> std::span<const float> {
      FeatureExtractor::extract(drive, rec, state,
                                std::span<float>(row).first(base_count));
      if (options.rolling_features)
        rolling.extract(std::span<float>(row).subspan(base_count));
      return row;
    };
    sink(dtf, u, get_row);
  }
}

/// bernoulli(keep_prob) decision replayed from the row's stored draw.
bool keeps_row(double keep_prob, double u) noexcept {
  return keep_prob >= 1.0 || u < keep_prob;
}

}  // namespace

void append_drive(ml::Dataset& out, const trace::DriveHistory& drive,
                  const DatasetBuildOptions& options) {
  if (options.lookahead_days < 1)
    throw std::invalid_argument("DatasetBuildOptions: lookahead_days must be >= 1");
  if (out.feature_names.empty()) out.feature_names = option_feature_names(options);

  walk_drive(drive, options, [&](std::int32_t dtf, double u, auto&& get_row) {
    const bool positive = dtf <= options.lookahead_days;
    const double keep_prob =
        positive ? options.positive_keep_prob : options.negative_keep_prob;
    if (!keeps_row(keep_prob, u)) return;
    out.x.push_row(get_row());
    out.y.push_back(positive ? 1.0f : 0.0f);
    out.groups.push_back(drive.uid());
  });
}

ml::Dataset build_dataset(const sim::FleetSimulator& fleet,
                          const DatasetBuildOptions& options) {
  auto result = fleet.visit(
      [] { return ml::Dataset{}; },
      [&](ml::Dataset& acc, const trace::DriveHistory& drive) {
        append_drive(acc, drive, options);
      },
      [](ml::Dataset& dst, const ml::Dataset& src) {
        dst.x.append_rows(src.x);
        dst.y.insert(dst.y.end(), src.y.begin(), src.y.end());
        dst.groups.insert(dst.groups.end(), src.groups.begin(), src.groups.end());
        if (dst.feature_names.empty()) dst.feature_names = src.feature_names;
      });
  if (result.feature_names.empty()) result.feature_names = FeatureExtractor::names();
  result.validate();
  return result;
}

ml::Dataset build_dataset(const trace::FleetTrace& fleet,
                          const DatasetBuildOptions& options) {
  ml::Dataset out;
  for (const auto& drive : fleet.drives) append_drive(out, drive, options);
  if (out.feature_names.empty()) out.feature_names = FeatureExtractor::names();
  out.validate();
  return out;
}

namespace {

/// Per-worker partial of the sweep cache's columnar arrays.
struct CacheColumns {
  ml::Matrix x;
  std::vector<std::int32_t> dtf;
  std::vector<double> keep_u;
  std::vector<std::uint64_t> groups;

  void append(const CacheColumns& other) {
    x.append_rows(other.x);
    dtf.insert(dtf.end(), other.dtf.begin(), other.dtf.end());
    keep_u.insert(keep_u.end(), other.keep_u.begin(), other.keep_u.end());
    groups.insert(groups.end(), other.groups.begin(), other.groups.end());
  }
};

/// Cache one drive's candidate rows: everything that survives the keep
/// filter for at least one window N in [1, max_lookahead].
void append_drive_to_cache(CacheColumns& out, const trace::DriveHistory& drive,
                           const DatasetBuildOptions& options, int max_lookahead) {
  walk_drive(drive, options, [&](std::int32_t dtf, double u, auto&& get_row) {
    // Across the sweep the row is positive for N >= dtf and negative
    // below; cache it iff either class's keep filter would admit it.
    const bool ever_positive = dtf <= max_lookahead;
    const bool kept = (ever_positive && keeps_row(options.positive_keep_prob, u)) ||
                      keeps_row(options.negative_keep_prob, u);
    if (!kept) return;
    out.x.push_row(get_row());
    out.dtf.push_back(dtf);
    out.keep_u.push_back(u);
    out.groups.push_back(drive.uid());
  });
}

}  // namespace

SweepDatasetCache::SweepDatasetCache(const sim::FleetSimulator& fleet,
                                     const DatasetBuildOptions& base, int max_lookahead)
    : base_(base), max_lookahead_(max_lookahead) {
  if (max_lookahead < 1)
    throw std::invalid_argument("SweepDatasetCache: max_lookahead must be >= 1");
  CacheColumns columns = fleet.visit(
      [] { return CacheColumns{}; },
      [&](CacheColumns& acc, const trace::DriveHistory& drive) {
        append_drive_to_cache(acc, drive, base_, max_lookahead_);
      },
      [](CacheColumns& dst, const CacheColumns& src) { dst.append(src); });
  x_ = std::move(columns.x);
  dtf_ = std::move(columns.dtf);
  keep_u_ = std::move(columns.keep_u);
  groups_ = std::move(columns.groups);
  feature_names_ = option_feature_names(base_);
}

SweepDatasetCache::SweepDatasetCache(const trace::FleetTrace& fleet,
                                     const DatasetBuildOptions& base, int max_lookahead)
    : base_(base), max_lookahead_(max_lookahead) {
  if (max_lookahead < 1)
    throw std::invalid_argument("SweepDatasetCache: max_lookahead must be >= 1");
  CacheColumns columns;
  for (const auto& drive : fleet.drives)
    append_drive_to_cache(columns, drive, base_, max_lookahead_);
  x_ = std::move(columns.x);
  dtf_ = std::move(columns.dtf);
  keep_u_ = std::move(columns.keep_u);
  groups_ = std::move(columns.groups);
  feature_names_ = option_feature_names(base_);
}

ml::Dataset SweepDatasetCache::materialize(int lookahead_days) const {
  if (lookahead_days < 1 || lookahead_days > max_lookahead_)
    throw std::invalid_argument(
        "SweepDatasetCache: lookahead_days must be in [1, " +
        std::to_string(max_lookahead_) + "], got " + std::to_string(lookahead_days));
  ml::Dataset out;
  out.feature_names = feature_names_;
  for (std::size_t i = 0; i < x_.rows(); ++i) {
    const bool positive = dtf_[i] <= lookahead_days;
    const double keep_prob =
        positive ? base_.positive_keep_prob : base_.negative_keep_prob;
    if (!keeps_row(keep_prob, keep_u_[i])) continue;
    out.x.push_row(x_.row(i));
    out.y.push_back(positive ? 1.0f : 0.0f);
    out.groups.push_back(groups_[i]);
  }
  out.validate();
  return out;
}

}  // namespace ssdfail::core
