#include "core/monitor_metrics.hpp"

#include <cstdio>

namespace ssdfail::core {

void MonitorMetricsSnapshot::merge(const MonitorMetricsSnapshot& other) {
  records_scored += other.records_scored;
  alerts_raised += other.alerts_raised;
  drives_created += other.drives_created;
  drives_retired += other.drives_retired;
  batches_scored += other.batches_scored;
  out_of_order_dropped += other.out_of_order_dropped;
  non_finite_scores += other.non_finite_scores;
  drives_tracked += other.drives_tracked;
  degraded = degraded || other.degraded;
  sanitizer.merge(other.sanitizer);
  score_latency_us.merge(other.score_latency_us);
}

double MonitorMetricsSnapshot::latency_quantile_us(double q) const {
  const double total = score_latency_us.total();
  if (total <= 0.0) return 0.0;
  const double target = q * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < score_latency_us.bins(); ++i) {
    cum += score_latency_us.count(i);
    if (cum >= target) return score_latency_us.bin_hi(i);
  }
  return score_latency_us.bin_hi(score_latency_us.bins() - 1);
}

std::string MonitorMetricsSnapshot::to_text() const {
  char buf[1024];
  const double alert_pct =
      records_scored > 0
          ? 100.0 * static_cast<double>(alerts_raised) / static_cast<double>(records_scored)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "fleet-monitor metrics (%llu shard%s)%s\n"
                "  records scored      %llu\n"
                "  alerts raised       %llu (%.2f%%)\n"
                "  drives tracked      %llu (created %llu, retired %llu)\n"
                "  batches scored      %llu\n"
                "  out-of-order drops  %llu\n"
                "  records repaired    %llu (duplicates dropped %llu)\n"
                "  records quarantined %llu (dead-lettered %zu, overflow %llu)\n"
                "  non-finite scores   %llu (clamped to 1.0)\n"
                "  score latency/rec   p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
                static_cast<unsigned long long>(shards), shards == 1 ? "" : "s",
                degraded ? "  [DEGRADED: fallback model]" : "",
                static_cast<unsigned long long>(records_scored),
                static_cast<unsigned long long>(alerts_raised), alert_pct,
                static_cast<unsigned long long>(drives_tracked),
                static_cast<unsigned long long>(drives_created),
                static_cast<unsigned long long>(drives_retired),
                static_cast<unsigned long long>(batches_scored),
                static_cast<unsigned long long>(out_of_order_dropped),
                static_cast<unsigned long long>(sanitizer.records_repaired +
                                                sanitizer.duplicates_dropped),
                static_cast<unsigned long long>(sanitizer.duplicates_dropped),
                static_cast<unsigned long long>(sanitizer.records_quarantined),
                sanitizer.dead_letters.size(),
                static_cast<unsigned long long>(sanitizer.dead_letter_overflow),
                static_cast<unsigned long long>(non_finite_scores),
                latency_quantile_us(0.5), latency_quantile_us(0.9),
                latency_quantile_us(0.99));
  std::string text = buf;
  // Per-kind breakdown, printed only for the kinds that actually occurred.
  for (trace::ViolationKind kind : trace::kAllViolationKinds) {
    const auto k = static_cast<std::size_t>(kind);
    if (sanitizer.repaired[k] == 0 && sanitizer.quarantined[k] == 0) continue;
    std::snprintf(buf, sizeof(buf), "    %-28s repaired %llu  quarantined %llu\n",
                  std::string(trace::violation_name(kind)).c_str(),
                  static_cast<unsigned long long>(sanitizer.repaired[k]),
                  static_cast<unsigned long long>(sanitizer.quarantined[k]));
    text += buf;
  }
  return text;
}

void MonitorMetrics::add_score_latency(double us_per_record, std::uint64_t records) {
  std::scoped_lock lock(latency_mutex_);
  latency_us_.add(us_per_record, static_cast<double>(records));
}

MonitorMetricsSnapshot MonitorMetrics::snapshot() const {
  MonitorMetricsSnapshot s;
  s.records_scored = records_scored_.load(std::memory_order_relaxed);
  s.alerts_raised = alerts_raised_.load(std::memory_order_relaxed);
  s.drives_created = drives_created_.load(std::memory_order_relaxed);
  s.drives_retired = drives_retired_.load(std::memory_order_relaxed);
  s.batches_scored = batches_scored_.load(std::memory_order_relaxed);
  s.out_of_order_dropped = out_of_order_dropped_.load(std::memory_order_relaxed);
  s.non_finite_scores = non_finite_scores_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(latency_mutex_);
    s.score_latency_us = latency_us_;
  }
  return s;
}

}  // namespace ssdfail::core
