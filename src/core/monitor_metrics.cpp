#include "core/monitor_metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace ssdfail::core {

void MonitorMetricsSnapshot::merge(const MonitorMetricsSnapshot& other) {
  records_scored += other.records_scored;
  alerts_raised += other.alerts_raised;
  drives_created += other.drives_created;
  drives_retired += other.drives_retired;
  batches_scored += other.batches_scored;
  out_of_order_dropped += other.out_of_order_dropped;
  non_finite_scores += other.non_finite_scores;
  drives_tracked += other.drives_tracked;
  degraded = degraded || other.degraded;
  sanitizer.merge(other.sanitizer);
  score_latency_us.merge(other.score_latency_us);
}

double MonitorMetricsSnapshot::latency_quantile_us(double q) const {
  return score_latency_us.quantile(q);
}

std::string MonitorMetricsSnapshot::to_text() const {
  char buf[1024];
  const double alert_pct =
      records_scored > 0
          ? 100.0 * static_cast<double>(alerts_raised) / static_cast<double>(records_scored)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "fleet-monitor metrics (%llu shard%s)%s\n"
                "  records scored      %llu\n"
                "  alerts raised       %llu (%.2f%%)\n"
                "  drives tracked      %llu (created %llu, retired %llu)\n"
                "  batches scored      %llu\n"
                "  out-of-order drops  %llu\n"
                "  records repaired    %llu (duplicates dropped %llu)\n"
                "  records quarantined %llu (dead-lettered %zu, overflow %llu)\n"
                "  non-finite scores   %llu (clamped to 1.0)\n"
                "  score latency/rec   p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
                static_cast<unsigned long long>(shards), shards == 1 ? "" : "s",
                degraded ? "  [DEGRADED: fallback model]" : "",
                static_cast<unsigned long long>(records_scored),
                static_cast<unsigned long long>(alerts_raised), alert_pct,
                static_cast<unsigned long long>(drives_tracked),
                static_cast<unsigned long long>(drives_created),
                static_cast<unsigned long long>(drives_retired),
                static_cast<unsigned long long>(batches_scored),
                static_cast<unsigned long long>(out_of_order_dropped),
                static_cast<unsigned long long>(sanitizer.records_repaired +
                                                sanitizer.duplicates_dropped),
                static_cast<unsigned long long>(sanitizer.duplicates_dropped),
                static_cast<unsigned long long>(sanitizer.records_quarantined),
                sanitizer.dead_letters.size(),
                static_cast<unsigned long long>(sanitizer.dead_letter_overflow),
                static_cast<unsigned long long>(non_finite_scores),
                latency_quantile_us(0.5), latency_quantile_us(0.9),
                latency_quantile_us(0.99));
  std::string text = buf;
  // Per-kind breakdown, printed only for the kinds that actually occurred.
  for (trace::ViolationKind kind : trace::kAllViolationKinds) {
    const auto k = static_cast<std::size_t>(kind);
    if (sanitizer.repaired[k] == 0 && sanitizer.quarantined[k] == 0) continue;
    std::snprintf(buf, sizeof(buf), "    %-28s repaired %llu  quarantined %llu\n",
                  std::string(trace::violation_name(kind)).c_str(),
                  static_cast<unsigned long long>(sanitizer.repaired[k]),
                  static_cast<unsigned long long>(sanitizer.quarantined[k]));
    text += buf;
  }
  return text;
}

namespace {

/// Registry layout matching stats::Histogram(0, kScoreLatencyMaxUs,
/// kScoreLatencyBins): finite bounds at 50, 100, ..., 2000us plus the
/// implicit +Inf bucket.
const std::vector<double>& score_latency_bounds() {
  static const std::vector<double>* const bounds = new std::vector<double>(
      obs::equal_width_bounds(0.0, kScoreLatencyMaxUs, kScoreLatencyBins));
  return *bounds;
}

}  // namespace

MonitorMetrics::MonitorMetrics(obs::MetricsRegistry& registry, const obs::Labels& labels)
    : records_scored_(registry.counter("monitor_records_scored_total", labels,
                                       "records scored (accepted by the sanitizer)")),
      alerts_raised_(registry.counter("monitor_alerts_total", labels,
                                      "records whose risk crossed the alert threshold")),
      drives_created_(registry.counter("monitor_drives_created_total", labels,
                                       "per-drive monitors lazily created")),
      drives_retired_(registry.counter("monitor_drives_retired_total", labels,
                                       "per-drive monitors dropped via retire()")),
      batches_scored_(registry.counter("monitor_batches_total", labels,
                                       "observe_batch shard groups scored")),
      out_of_order_dropped_(
          registry.counter("monitor_out_of_order_dropped_total", labels,
                           "records quarantined for non-monotone day order")),
      non_finite_scores_(registry.counter("monitor_non_finite_scores_total", labels,
                                          "NaN/inf model scores clamped to 1.0")),
      drives_tracked_(registry.gauge("monitor_drives_tracked", labels,
                                     "per-drive monitors currently resident")),
      latency_us_(registry.histogram("monitor_score_latency_us", score_latency_bounds(),
                                     labels, "per-record scoring latency")) {}

MonitorMetricsSnapshot MonitorMetrics::snapshot() const {
  MonitorMetricsSnapshot s;
  s.records_scored = records_scored_.value();
  s.alerts_raised = alerts_raised_.value();
  s.drives_created = drives_created_.value();
  s.drives_retired = drives_retired_.value();
  s.batches_scored = batches_scored_.value();
  s.out_of_order_dropped = out_of_order_dropped_.value();
  s.non_finite_scores = non_finite_scores_.value();
  // Reconstruct the fixed-bin histogram from the registry buckets.  Bucket
  // i (observations <= bounds[i]) maps onto equal-width bin i; the +Inf
  // bucket folds into the last bin, matching stats::Histogram's
  // clamp-to-edge semantics.
  constexpr double kWidth = kScoreLatencyMaxUs / static_cast<double>(kScoreLatencyBins);
  for (std::size_t i = 0; i < latency_us_.bucket_count(); ++i) {
    const std::uint64_t n = latency_us_.bucket(i);
    if (n == 0) continue;
    const std::size_t bin = std::min(i, kScoreLatencyBins - 1);
    s.score_latency_us.add((static_cast<double>(bin) + 0.5) * kWidth,
                           static_cast<double>(n));
  }
  return s;
}

}  // namespace ssdfail::core
