#include "core/features.hpp"

#include <cmath>
#include <stdexcept>

namespace ssdfail::core {

const std::vector<std::string>& FeatureExtractor::names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> n;
    // Daily values.
    n.emplace_back("read_count");
    n.emplace_back("write_count");
    n.emplace_back("erase_count");
    for (trace::ErrorType e : trace::kAllErrorTypes)
      n.push_back(std::string(trace::error_name(e)) + "_error");
    n.emplace_back("new_bad_blocks");
    // Cumulative values.
    n.emplace_back("cum_read_count");
    n.emplace_back("cum_write_count");
    n.emplace_back("cum_erase_count");
    for (trace::ErrorType e : trace::kAllErrorTypes)
      n.push_back("cum_" + std::string(trace::error_name(e)) + "_error");
    n.emplace_back("cum_bad_block_count");
    // Scalars.
    n.emplace_back("pe_cycles");
    n.emplace_back("drive_age_days");
    n.emplace_back("status_read_only");
    n.emplace_back("corr_err_rate");
    // Class-specific channels (zero outside the owning device class, so
    // MLC-only datasets just carry constant columns the forest ignores).
    n.emplace_back("reallocated_sectors");   // HDD, cumulative in the record
    n.emplace_back("seek_errors");           // HDD, daily
    n.emplace_back("cum_seek_errors");
    n.emplace_back("media_wear");            // NVMe, cumulative in the record
    n.emplace_back("throttle_events");       // NVMe, daily
    n.emplace_back("cum_throttle_events");
    return n;
  }();
  return kNames;
}

std::size_t FeatureExtractor::index_of(const std::string& name) {
  const auto& all = names();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i] == name) return i;
  throw std::out_of_range("FeatureExtractor: unknown feature '" + name + "'");
}

std::size_t FeatureExtractor::age_index() {
  static const std::size_t kIndex = index_of("drive_age_days");
  return kIndex;
}

void FeatureExtractor::advance(State& state, const trace::DailyRecord& rec) noexcept {
  state.cum.apply(rec);
  state.cum_bad_blocks =
      static_cast<std::uint64_t>(rec.bad_blocks) + rec.factory_bad_blocks;
  state.new_bad_blocks_today =
      rec.bad_blocks >= state.prev_bad_blocks ? rec.bad_blocks - state.prev_bad_blocks : 0;
  state.prev_bad_blocks = rec.bad_blocks;
  state.cum_seek_errors += rec.seek_errors;
  state.cum_throttle_events += rec.throttle_events;
}

void FeatureExtractor::extract(const trace::DriveHistory& drive,
                               const trace::DailyRecord& rec, const State& state,
                               std::span<float> out) {
  if (out.size() != count()) throw std::invalid_argument("FeatureExtractor: bad span size");
  std::size_t i = 0;
  // Daily values — raw counts, as in the paper's pipeline (tree models are
  // scale-invariant; the linear/distance models pay for the heavy tails,
  // which is part of why they trail the forest in Table 6).
  out[i++] = static_cast<float>(rec.reads);
  out[i++] = static_cast<float>(rec.writes);
  out[i++] = static_cast<float>(rec.erases);
  for (trace::ErrorType e : trace::kAllErrorTypes)
    out[i++] = static_cast<float>(rec.error(e));
  out[i++] = static_cast<float>(state.new_bad_blocks_today);
  // Cumulative values.
  out[i++] = static_cast<float>(state.cum.reads);
  out[i++] = static_cast<float>(state.cum.writes);
  out[i++] = static_cast<float>(state.cum.erases);
  for (trace::ErrorType e : trace::kAllErrorTypes)
    out[i++] = static_cast<float>(state.cum.error(e));
  out[i++] = static_cast<float>(state.cum_bad_blocks);
  // Scalars.
  out[i++] = static_cast<float>(rec.pe_cycles);
  out[i++] = static_cast<float>(rec.day - drive.deploy_day);
  out[i++] = rec.read_only ? 1.0f : 0.0f;
  const double corr = static_cast<double>(state.cum.error(trace::ErrorType::kCorrectable));
  const double reads = static_cast<double>(state.cum.reads);
  out[i++] = static_cast<float>(corr / std::max(reads, 1.0));
  // Class-specific channels.
  out[i++] = static_cast<float>(rec.reallocated_sectors);
  out[i++] = static_cast<float>(rec.seek_errors);
  out[i++] = static_cast<float>(state.cum_seek_errors);
  out[i++] = static_cast<float>(rec.media_wear);
  out[i++] = static_cast<float>(rec.throttle_events);
  out[i++] = static_cast<float>(state.cum_throttle_events);
}

void FeatureExtractor::advance(State& state, const store::ChunkView& chunk,
                               std::size_t row) noexcept {
  state.cum.reads += chunk.reads[row];
  state.cum.writes += chunk.writes[row];
  state.cum.erases += chunk.erases[row];
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    state.cum.errors[e] += chunk.errors[e][row];
  const std::uint32_t bad_blocks = chunk.bad_blocks[row];
  state.cum_bad_blocks =
      static_cast<std::uint64_t>(bad_blocks) + chunk.factory_bad_blocks[row];
  state.new_bad_blocks_today =
      bad_blocks >= state.prev_bad_blocks ? bad_blocks - state.prev_bad_blocks : 0;
  state.prev_bad_blocks = bad_blocks;
  state.cum_seek_errors += chunk.seek_errors[row];
  state.cum_throttle_events += chunk.throttle_events[row];
}

void FeatureExtractor::extract(std::int32_t deploy_day, const store::ChunkView& chunk,
                               std::size_t row, const State& state,
                               std::span<float> out) {
  if (out.size() != count()) throw std::invalid_argument("FeatureExtractor: bad span size");
  std::size_t i = 0;
  // Mirrors the record overload field for field (same casts, same order).
  out[i++] = static_cast<float>(chunk.reads[row]);
  out[i++] = static_cast<float>(chunk.writes[row]);
  out[i++] = static_cast<float>(chunk.erases[row]);
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    out[i++] = static_cast<float>(chunk.errors[e][row]);
  out[i++] = static_cast<float>(state.new_bad_blocks_today);
  out[i++] = static_cast<float>(state.cum.reads);
  out[i++] = static_cast<float>(state.cum.writes);
  out[i++] = static_cast<float>(state.cum.erases);
  for (trace::ErrorType e : trace::kAllErrorTypes)
    out[i++] = static_cast<float>(state.cum.error(e));
  out[i++] = static_cast<float>(state.cum_bad_blocks);
  out[i++] = static_cast<float>(chunk.pe_cycles[row]);
  out[i++] = static_cast<float>(chunk.day[row] - deploy_day);
  out[i++] = (chunk.flags[row] & 0x1u) != 0 ? 1.0f : 0.0f;
  const double corr = static_cast<double>(state.cum.error(trace::ErrorType::kCorrectable));
  const double reads = static_cast<double>(state.cum.reads);
  out[i++] = static_cast<float>(corr / std::max(reads, 1.0));
  out[i++] = static_cast<float>(chunk.reallocated_sectors[row]);
  out[i++] = static_cast<float>(chunk.seek_errors[row]);
  out[i++] = static_cast<float>(state.cum_seek_errors);
  out[i++] = static_cast<float>(chunk.media_wear[row]);
  out[i++] = static_cast<float>(chunk.throttle_events[row]);
  out[i++] = static_cast<float>(state.cum_throttle_events);
}

const std::vector<std::string>& RollingWindow::names() {
  static const std::vector<std::string> kNames = {
      "ue_7d",             // uncorrectable errors over the trailing window
      "final_read_7d",     // final read errors over the window
      "new_bad_blocks_7d", // bad blocks developed in the window
      "error_days_7d",     // days in the window with any non-transparent error
      "writes_rel_7d",     // today's writes relative to the window mean
  };
  return kNames;
}

void RollingWindow::evict(std::int32_t current_day) {
  std::erase_if(window_, [&](const DayEntry& e) {
    return e.day <= current_day - kWindowDays;
  });
}

void RollingWindow::advance(const trace::DailyRecord& rec, std::uint32_t new_bad_blocks) {
  evict(rec.day);
  DayEntry entry;
  entry.day = rec.day;
  entry.ue = rec.error(trace::ErrorType::kUncorrectable);
  entry.final_read = rec.error(trace::ErrorType::kFinalRead);
  entry.new_bad_blocks = new_bad_blocks;
  entry.writes = rec.writes;
  entry.any_nontransparent = rec.any_nontransparent_error();
  window_.push_back(entry);
}

void RollingWindow::extract(std::span<float> out) const {
  if (out.size() != count()) throw std::invalid_argument("RollingWindow: bad span size");
  double ue = 0.0;
  double final_read = 0.0;
  double bad_blocks = 0.0;
  double error_days = 0.0;
  double writes_sum = 0.0;
  for (const DayEntry& e : window_) {
    ue += e.ue;
    final_read += e.final_read;
    bad_blocks += e.new_bad_blocks;
    if (e.any_nontransparent) error_days += 1.0;
    writes_sum += e.writes;
  }
  const double today_writes = window_.empty() ? 0.0 : window_.back().writes;
  const double mean_writes = window_.empty()
                                 ? 0.0
                                 : writes_sum / static_cast<double>(window_.size());
  std::size_t i = 0;
  out[i++] = static_cast<float>(ue);
  out[i++] = static_cast<float>(final_read);
  out[i++] = static_cast<float>(bad_blocks);
  out[i++] = static_cast<float>(error_days);
  out[i++] = static_cast<float>(today_writes / std::max(mean_writes, 1.0));
}

DriveFeatureCursor::DriveFeatureCursor(trace::DriveModel drive_model,
                                       std::int32_t deploy_day)
    : last_day_(deploy_day - 1) {
  header_.model = drive_model;
  header_.deploy_day = deploy_day;
}

void DriveFeatureCursor::advance_and_extract(const trace::DailyRecord& rec,
                                             std::span<float> out) {
  if (rec.day <= last_day_)
    throw std::invalid_argument("DriveFeatureCursor: records must be in day order");
  last_day_ = rec.day;
  ++days_observed_;
  FeatureExtractor::advance(state_, rec);
  FeatureExtractor::extract(header_, rec, state_, out);
}

}  // namespace ssdfail::core
