file(REMOVE_RECURSE
  "libssdfail_core.a"
)
