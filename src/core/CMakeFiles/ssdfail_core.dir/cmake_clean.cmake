file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_core.dir/characterization.cpp.o"
  "CMakeFiles/ssdfail_core.dir/characterization.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/ssdfail_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/failure_timeline.cpp.o"
  "CMakeFiles/ssdfail_core.dir/failure_timeline.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/features.cpp.o"
  "CMakeFiles/ssdfail_core.dir/features.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/monitor_metrics.cpp.o"
  "CMakeFiles/ssdfail_core.dir/monitor_metrics.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/online_monitor.cpp.o"
  "CMakeFiles/ssdfail_core.dir/online_monitor.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/policy.cpp.o"
  "CMakeFiles/ssdfail_core.dir/policy.cpp.o.d"
  "CMakeFiles/ssdfail_core.dir/prediction.cpp.o"
  "CMakeFiles/ssdfail_core.dir/prediction.cpp.o.d"
  "libssdfail_core.a"
  "libssdfail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
