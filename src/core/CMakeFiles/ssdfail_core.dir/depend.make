# Empty dependencies file for ssdfail_core.
# This may be replaced when dependencies are built.
