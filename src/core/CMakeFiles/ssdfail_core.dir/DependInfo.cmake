
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/ssdfail_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/dataset_builder.cpp" "src/core/CMakeFiles/ssdfail_core.dir/dataset_builder.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/core/failure_timeline.cpp" "src/core/CMakeFiles/ssdfail_core.dir/failure_timeline.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/failure_timeline.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/ssdfail_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/features.cpp.o.d"
  "/root/repo/src/core/monitor_metrics.cpp" "src/core/CMakeFiles/ssdfail_core.dir/monitor_metrics.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/monitor_metrics.cpp.o.d"
  "/root/repo/src/core/online_monitor.cpp" "src/core/CMakeFiles/ssdfail_core.dir/online_monitor.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/online_monitor.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/ssdfail_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/prediction.cpp" "src/core/CMakeFiles/ssdfail_core.dir/prediction.cpp.o" "gcc" "src/core/CMakeFiles/ssdfail_core.dir/prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/trace/CMakeFiles/ssdfail_trace.dir/DependInfo.cmake"
  "/root/repo/src/store/CMakeFiles/ssdfail_store.dir/DependInfo.cmake"
  "/root/repo/src/robustness/CMakeFiles/ssdfail_robustness.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/ssdfail_sim.dir/DependInfo.cmake"
  "/root/repo/src/ml/CMakeFiles/ssdfail_ml.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/ssdfail_stats.dir/DependInfo.cmake"
  "/root/repo/src/parallel/CMakeFiles/ssdfail_parallel.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  "/root/repo/src/io/CMakeFiles/ssdfail_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
