#include "core/transfer.hpp"

#include <stdexcept>
#include <vector>

#include "obs/trace_span.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {

bool TransferMatrix::diagonal_dominant() const noexcept {
  // Column dominance only: within each TEST class, the same-class model
  // must beat every foreign-trained model.  Row comparisons are not part
  // of the invariant — they compare AUCs across different evaluation
  // tasks, and some classes are intrinsically easier to predict (HDD's
  // reallocated-sector ramp makes mlc->hdd routinely beat mlc->mlc; see
  // EXPERIMENTS.md).
  for (std::size_t c = 0; c < trace::kNumDeviceClasses; ++c) {
    for (std::size_t o = 0; o < trace::kNumDeviceClasses; ++o) {
      if (o == c) continue;
      if (auc[c][c] <= auc[o][c]) return false;  // foreign model wins column c
    }
  }
  return true;
}

DriveSplit split_by_drive(const ml::Dataset& data, double train_fraction,
                          std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("split_by_drive: train_fraction must be in (0, 1)");
  // One bernoulli per DRIVE, keyed (seed, uid): every row of a drive lands
  // on the same side no matter the row order or dataset composition.
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> eval_idx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t uid = data.groups[i];
    const bool train = stats::Rng({seed, uid}).bernoulli(train_fraction);
    (train ? train_idx : eval_idx).push_back(i);
  }
  return {data.subset(train_idx), data.subset(eval_idx)};
}

TransferMatrix cross_class_transfer(
    const std::array<ml::Dataset, trace::kNumDeviceClasses>& per_class,
    const TransferOptions& options) {
  static const obs::SiteId kSite = obs::intern_site("core.cross_class_transfer");
  obs::Span span(kSite);

  std::array<DriveSplit, trace::kNumDeviceClasses> splits;
  TransferMatrix out;
  for (std::size_t c = 0; c < trace::kNumDeviceClasses; ++c) {
    splits[c] = split_by_drive(per_class[c], options.train_fraction,
                               options.split_seed);
    out.train_rows[c] = splits[c].train.size();
    out.train_positives[c] = splits[c].train.positives();
    out.eval_rows[c] = splits[c].eval.size();
    out.eval_positives[c] = splits[c].eval.positives();
  }

  // Every cell — diagonal included — trains on the train half and scores
  // the eval half, so same-class and cross-class AUCs are measured on
  // exactly the same held-out rows per test class.
  for (std::size_t train_c = 0; train_c < trace::kNumDeviceClasses; ++train_c) {
    for (std::size_t test_c = 0; test_c < trace::kNumDeviceClasses; ++test_c) {
      const auto model = ml::make_model(options.model, options.model_seed);
      out.auc[train_c][test_c] = transfer_auc(
          *model, splits[train_c].train, splits[test_c].eval, options.protocol);
    }
  }
  return out;
}

TransferMatrix cross_class_transfer(const trace::FleetTrace& fleet,
                                    const TransferOptions& options) {
  std::array<ml::Dataset, trace::kNumDeviceClasses> per_class;
  for (trace::DeviceClass c : trace::kAllDeviceClasses) {
    DatasetBuildOptions opts = options.build;
    opts.class_filter = c;
    per_class[static_cast<std::size_t>(c)] = build_dataset(fleet, opts);
  }
  return cross_class_transfer(per_class, options);
}

}  // namespace ssdfail::core
