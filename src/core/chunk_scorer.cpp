#include "core/chunk_scorer.hpp"

#include <stdexcept>

#include "core/features.hpp"
#include "obs/trace_span.hpp"

namespace ssdfail::core {

FleetScores predict_chunk(const ml::FlatForest& engine,
                          const store::ColumnarFleetView& view,
                          parallel::ThreadPool& pool) {
  static const obs::SiteId kSite = obs::intern_site("chunk_scorer.predict");
  obs::Span span(kSite);
  if (engine.empty()) throw std::logic_error("predict_chunk: empty engine");
  if (engine.n_features() != FeatureExtractor::count())
    throw std::invalid_argument("predict_chunk: engine feature count mismatch");

  // Storage-order offsets: chunk c's records land at [offsets[c],
  // offsets[c + 1]) regardless of which worker scores them.
  const std::size_t n_chunks = view.chunk_count();
  std::vector<std::size_t> offsets(n_chunks + 1, 0);
  for (std::size_t c = 0; c < n_chunks; ++c)
    offsets[c + 1] = offsets[c] + view.chunk(c).day.size();

  FleetScores out;
  out.uid.resize(offsets[n_chunks]);
  out.day.resize(offsets[n_chunks]);
  out.score.resize(offsets[n_chunks]);

  parallel::parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const store::ChunkView& chunk = view.chunk(c);
        const std::size_t n_features = FeatureExtractor::count();
        std::size_t cursor = offsets[c];
        for (const store::DriveRef& ref : chunk.drives) {
          ml::Matrix rows(ref.row_count, n_features);
          FeatureExtractor::State state;
          for (std::size_t i = 0; i < ref.row_count; ++i) {
            const std::size_t row = ref.row_begin + i;
            FeatureExtractor::advance(state, chunk, row);
            FeatureExtractor::extract(ref.deploy_day, chunk, row, state, rows.row(i));
            out.uid[cursor + i] = ref.uid();
            out.day[cursor + i] = chunk.day[row];
          }
          engine.predict_into(rows, 0, ref.row_count, out.score.data() + cursor);
          cursor += ref.row_count;
        }
      },
      pool);
  return out;
}

}  // namespace ssdfail::core
