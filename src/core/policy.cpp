#include "core/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssdfail::core {

PolicyOutcome evaluate_policy(std::span<const float> scores,
                              std::span<const float> labels, double threshold,
                              double negative_keep_prob) {
  if (negative_keep_prob <= 0.0 || negative_keep_prob > 1.0)
    throw std::invalid_argument("evaluate_policy: bad negative_keep_prob");
  const ml::Confusion c = ml::confusion_at(scores, labels, threshold);
  PolicyOutcome out;
  out.threshold = threshold;
  out.recall = c.tpr();
  out.false_alarm_rate = c.fpr();
  out.caught = c.tp;
  out.missed = c.fn;
  // Each sampled healthy day stands for 1/keep_prob real days; a drive-year
  // is ~365 healthy days, so false alarms per drive-year is just the
  // per-day false-alarm probability times 365 (subsampling cancels out).
  out.false_alarms_per_drive_year = c.fpr() * 365.0;
  return out;
}

double threshold_for_fpr(std::span<const float> scores, std::span<const float> labels,
                         double max_fpr) {
  const auto curve = ml::roc_curve(scores, labels);
  // Curve is sorted by ascending FPR; pick the last point within budget.
  double threshold = 1.0;
  for (const auto& point : curve) {
    if (point.fpr <= max_fpr && std::isfinite(point.threshold))
      threshold = point.threshold;
    if (point.fpr > max_fpr) break;
  }
  return threshold;
}

}  // namespace ssdfail::core
