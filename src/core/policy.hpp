#pragma once

// Proactive-management policy analysis (Section 5's motivating use case):
// given a trained predictor and a discrimination threshold, what fraction
// of failures would be caught, and how many false replacements would the
// data center pay for?
//
// Works on a subsampled evaluation set; the negative keep-probability is
// used to scale false-alarm counts back to fleet scale.

#include "ml/metrics.hpp"

namespace ssdfail::core {

struct PolicyOutcome {
  double threshold = 0.0;
  double recall = 0.0;                 ///< fraction of failure days flagged
  double false_alarm_rate = 0.0;       ///< flagged fraction of healthy days
  double false_alarms_per_drive_year = 0.0;
  std::uint64_t caught = 0;
  std::uint64_t missed = 0;
};

/// Evaluate a threshold policy on (scores, labels) from a dataset whose
/// negatives were subsampled with `negative_keep_prob`.
[[nodiscard]] PolicyOutcome evaluate_policy(std::span<const float> scores,
                                            std::span<const float> labels,
                                            double threshold,
                                            double negative_keep_prob);

/// Smallest threshold whose false-positive rate does not exceed the given
/// budget (conservative operating points; Fig 14's use of high thresholds).
[[nodiscard]] double threshold_for_fpr(std::span<const float> scores,
                                       std::span<const float> labels, double max_fpr);

}  // namespace ssdfail::core
