#pragma once

// Re-derivation of the paper's failure timeline (Section 3, Fig 2) from
// observable logs only.
//
// "A failure occurs on a drive's last day of operational activity prior to
//  a swap" — where operational activity means read/write operations, and
// any trailing inactive (zero-op) logged days before the swap belong to the
// post-failure limbo, not to the operational period.
//
// This module never looks at DriveHistory::truth; tests cross-check the
// derivation against ground truth instead.

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/drive_history.hpp"

namespace ssdfail::core {

/// Age at or below which a failure counts as "young"/infant (Section 4.1).
inline constexpr std::int32_t kInfantAgeDays = 90;

/// One derived failure event (each corresponds to one swap).
struct FailureRecord {
  std::int32_t fail_day = 0;       ///< last operationally-active day
  std::int32_t swap_day = 0;
  std::int32_t age_at_failure = 0; ///< fail_day - deploy_day
  std::uint32_t pe_at_failure = 0;
  std::uint64_t cum_ue = 0;        ///< uncorrectable errors up to failure
  std::uint64_t cum_bad_blocks = 0;

  [[nodiscard]] bool young() const noexcept { return age_at_failure <= kInfantAgeDays; }
  /// Length of the pre-swap non-operational period (Fig 4).
  [[nodiscard]] std::int32_t nonop_days() const noexcept { return swap_day - fail_day; }
};

/// A maximal span of operational life: deployment/re-entry to failure or
/// to the censoring horizon (Fig 3).
struct OperationalPeriod {
  std::int32_t start_day = 0;
  std::int32_t end_day = 0;        ///< failure day, or last observed day
  bool ended_in_failure = false;

  [[nodiscard]] std::int32_t length() const noexcept { return end_day - start_day + 1; }
};

/// One visit to the repairs process (Fig 5 / Table 5).
struct RepairVisit {
  std::int32_t swap_day = 0;
  std::optional<std::int32_t> reentry_day;  ///< empty = never seen to return

  [[nodiscard]] std::optional<std::int32_t> repair_days() const noexcept {
    if (!reentry_day) return std::nullopt;
    return *reentry_day - swap_day;
  }
};

/// Full derived timeline of one drive.
struct DriveTimeline {
  std::vector<FailureRecord> failures;
  std::vector<OperationalPeriod> periods;
  std::vector<RepairVisit> repairs;
};

/// Derive the timeline from a drive's observable logs.
[[nodiscard]] DriveTimeline derive_timeline(const trace::DriveHistory& drive);

/// Convenience: days-to-failure for a given day (minimum over failures at
/// or after `day`); INT32_MAX when no later failure exists.
[[nodiscard]] std::int32_t days_to_next_failure(const DriveTimeline& timeline,
                                                std::int32_t day);

/// True if `day` falls inside post-failure limbo or the repair process
/// (i.e. after a derived failure day and before the next re-entry) — such
/// records are excluded from prediction datasets.
[[nodiscard]] bool in_failed_state(const DriveTimeline& timeline, std::int32_t day);

}  // namespace ssdfail::core
