#include "core/online_monitor.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ml/model_zoo.hpp"
#include "obs/trace_span.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

double elapsed_us(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// Monotonically increasing FleetMonitor instance id, used as the
/// `monitor` label so concurrent instances (tests, benches) never share
/// registry children.
std::string next_monitor_label() {
  static std::atomic<std::uint64_t> next{0};
  return std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

OnlineDriveMonitor::OnlineDriveMonitor(const ml::Classifier& model, double threshold,
                                       trace::DriveModel drive_model,
                                       std::int32_t deploy_day)
    : model_(&model),
      threshold_(threshold),
      cursor_(drive_model, deploy_day),
      row_(1, FeatureExtractor::count()) {}

void OnlineDriveMonitor::prepare_row(const trace::DailyRecord& record,
                                     std::span<float> out) {
  cursor_.advance_and_extract(record, out);
}

RiskAssessment OnlineDriveMonitor::observe(const trace::DailyRecord& record) {
  prepare_row(record, row_.row(0));
  RiskAssessment out;
  out.risk = model_->predict_proba(row_)[0];
  out.alert = out.risk >= threshold_;
  return out;
}

FleetMonitor::FleetMonitor(std::shared_ptr<const ml::Classifier> model, double threshold,
                           std::size_t shards,
                           robustness::SanitizerConfig sanitizer_config,
                           obs::MetricsRegistry* registry)
    : model_(ml::make_serving_model(std::move(model))), threshold_(threshold) {
  if (shards == 0) shards = 1;
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  if (sanitizer_config.registry == nullptr) sanitizer_config.registry = &reg;
  const std::string instance = next_monitor_label();
  degraded_gauge_ = &reg.gauge("monitor_degraded", {{"monitor", instance}},
                               "1 while serving on the fallback model");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(
        sanitizer_config, reg,
        obs::Labels{{"monitor", instance}, {"shard", std::to_string(s)}}));
}

std::size_t FleetMonitor::shard_index(std::uint64_t uid) const noexcept {
  // Hash, not modulo of the raw uid: drive_index occupies the low bits, so
  // raw-modulo would stripe a model's drives deterministically but keep all
  // of one drive's traffic on one shard either way; hashing also spreads
  // the model tag in the high bits.
  return static_cast<std::size_t>(stats::hash_keys({uid}) % shards_.size());
}

std::shared_ptr<const ml::Classifier> FleetMonitor::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void FleetMonitor::set_model(std::shared_ptr<const ml::Classifier> model) {
  // Compile for the serving engine outside the lock (scores are identical
  // either way; only speed changes).
  std::shared_ptr<const ml::Classifier> serving =
      ml::make_serving_model(std::move(model));
  std::scoped_lock lock(model_mutex_);
  model_ = std::move(serving);
}

OnlineDriveMonitor& FleetMonitor::monitor_for(Shard& shard, std::uint64_t uid,
                                              trace::DriveModel drive_model,
                                              std::int32_t deploy_day,
                                              const ml::Classifier& model) {
  auto it = shard.monitors.find(uid);
  if (it == shard.monitors.end()) {
    it = shard.monitors
             .emplace(uid,
                      OnlineDriveMonitor(model, threshold_, drive_model, deploy_day))
             .first;
    shard.metrics.on_drive_created();
  }
  return it->second;
}

float FleetMonitor::finite_or_clamp(Shard& shard, float risk) {
  if (std::isfinite(risk)) return risk;
  // A broken model must fail loud: conservative max risk, counted.
  shard.metrics.on_non_finite();
  return 1.0f;
}

RiskAssessment FleetMonitor::observe(trace::DriveModel drive_model,
                                     std::uint32_t drive_index, std::int32_t deploy_day,
                                     const trace::DailyRecord& record) {
  static const obs::SiteId kSite = obs::intern_site("monitor.observe");
  obs::Span span(kSite);
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  Shard& shard = *shards_[shard_index(uid)];
  const std::shared_ptr<const ml::Classifier> model = current_model();
  std::scoped_lock lock(shard.mutex);

  const robustness::SanitizeResult clean =
      shard.sanitizer.sanitize(uid, deploy_day, record);
  RiskAssessment assessment;
  switch (clean.action) {
    case robustness::SanitizeAction::kQuarantined:
      if (clean.kind == trace::ViolationKind::kNonMonotoneDays)
        shard.metrics.on_out_of_order();
      assessment.dropped = true;
      assessment.quarantined = true;
      return assessment;
    case robustness::SanitizeAction::kDuplicateDropped:
      assessment.dropped = true;
      return assessment;
    case robustness::SanitizeAction::kClean:
    case robustness::SanitizeAction::kRepaired:
      break;
  }

  OnlineDriveMonitor& monitor =
      monitor_for(shard, uid, drive_model, deploy_day, *model);
  monitor.rebind(*model);  // refresh after any hot swap; `model` outlives the call
  const auto start = std::chrono::steady_clock::now();
  assessment = monitor.observe(clean.record);
  assessment.risk = finite_or_clamp(shard, assessment.risk);
  assessment.alert = assessment.risk >= threshold_;
  assessment.repaired = clean.action == robustness::SanitizeAction::kRepaired;
  shard.metrics.on_scored(1, assessment.alert ? 1 : 0);
  shard.metrics.add_score_latency(elapsed_us(start), 1);
  return assessment;
}

void FleetMonitor::score_shard_batch(const ml::Classifier& model, Shard& shard,
                                     std::span<const FleetObservation> batch,
                                     const std::vector<std::size_t>& indices,
                                     std::vector<RiskAssessment>& out) {
  if (indices.empty()) return;
  static const obs::SiteId kSite = obs::intern_site("monitor.score_shard");
  obs::Span span(kSite);
  const auto start = std::chrono::steady_clock::now();
  ml::Matrix rows;
  std::vector<float> row(FeatureExtractor::count());
  std::vector<std::size_t> prepared;  // batch positions of accepted records
  prepared.reserve(indices.size());
  {
    std::scoped_lock lock(shard.mutex);
    for (std::size_t i : indices) {
      const FleetObservation& obs = batch[i];
      const std::uint64_t uid = obs.uid();
      const robustness::SanitizeResult clean =
          shard.sanitizer.sanitize(uid, obs.deploy_day, obs.record);
      if (clean.action == robustness::SanitizeAction::kQuarantined) {
        if (clean.kind == trace::ViolationKind::kNonMonotoneDays)
          shard.metrics.on_out_of_order();
        out[i].dropped = true;
        out[i].quarantined = true;
        continue;
      }
      if (clean.action == robustness::SanitizeAction::kDuplicateDropped) {
        out[i].dropped = true;
        continue;
      }
      OnlineDriveMonitor& monitor =
          monitor_for(shard, uid, obs.drive_model, obs.deploy_day, model);
      monitor.rebind(model);
      // The sanitizer guarantees accepted records arrive in strictly
      // increasing day order, so prepare_row cannot throw here.
      monitor.prepare_row(clean.record, row);
      out[i].repaired = clean.action == robustness::SanitizeAction::kRepaired;
      rows.push_row(row);
      prepared.push_back(i);
    }
  }
  if (prepared.empty()) return;
  // One matrix call per shard.  predict_proba scores rows independently, so
  // the result is bit-identical to per-record observe() for any sharding.
  const std::vector<float> scores = model.predict_proba(rows);
  std::uint64_t alerts = 0;
  for (std::size_t k = 0; k < prepared.size(); ++k) {
    RiskAssessment& a = out[prepared[k]];
    a.risk = finite_or_clamp(shard, scores[k]);
    a.alert = a.risk >= threshold_;
    if (a.alert) ++alerts;
  }
  shard.metrics.on_scored(prepared.size(), alerts);
  shard.metrics.on_batch();
  shard.metrics.add_score_latency(elapsed_us(start) / static_cast<double>(prepared.size()),
                                  prepared.size());
}

std::vector<RiskAssessment> FleetMonitor::observe_batch(
    std::span<const FleetObservation> batch, parallel::ThreadPool& pool) {
  static const obs::SiteId kSite = obs::intern_site("monitor.observe_batch");
  obs::Span span(kSite);
  std::vector<RiskAssessment> out(batch.size());
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    by_shard[shard_index(batch[i].uid())].push_back(i);

  const std::shared_ptr<const ml::Classifier> model = current_model();
  if (pool.size() <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s)
      score_shard_batch(*model, *shards_[s], batch, by_shard[s], out);
    return out;
  }
  // Each worker owns a stripe of shards, so a shard's group is prepared and
  // scored by exactly one thread (predict_proba degrades to sequential
  // inside a pool worker — the shard, not the row range, is the unit of
  // parallelism, which is what makes shard count the scaling knob).
  pool.run_on_all([&](unsigned w) {
    for (std::size_t s = w; s < shards_.size(); s += pool.size())
      score_shard_batch(*model, *shards_[s], batch, by_shard[s], out);
  });
  return out;
}

void FleetMonitor::retire(trace::DriveModel drive_model, std::uint32_t drive_index) {
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  Shard& shard = *shards_[shard_index(uid)];
  std::scoped_lock lock(shard.mutex);
  if (shard.monitors.erase(uid) > 0) shard.metrics.on_drive_retired();
  shard.sanitizer.forget(uid);
}

std::size_t FleetMonitor::drives_tracked() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    n += shard->monitors.size();
  }
  return n;
}

std::uint64_t FleetMonitor::alerts_raised() const { return metrics().alerts_raised; }

MonitorMetricsSnapshot FleetMonitor::metrics() const {
  MonitorMetricsSnapshot total;
  for (const auto& shard : shards_) {
    MonitorMetricsSnapshot s = shard->metrics.snapshot();
    {
      std::scoped_lock lock(shard->mutex);
      s.sanitizer = shard->sanitizer.snapshot();
    }
    total.merge(s);
  }
  total.shards = shards_.size();
  total.drives_tracked = drives_tracked();
  total.degraded = degraded();
  return total;
}

}  // namespace ssdfail::core
