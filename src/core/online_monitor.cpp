#include "core/online_monitor.hpp"

#include <stdexcept>

namespace ssdfail::core {

OnlineDriveMonitor::OnlineDriveMonitor(const ml::Classifier& model, double threshold,
                                       trace::DriveModel drive_model,
                                       std::int32_t deploy_day)
    : model_(&model),
      threshold_(threshold),
      row_(1, FeatureExtractor::count()),
      last_day_(deploy_day - 1) {
  header_.model = drive_model;
  header_.deploy_day = deploy_day;
}

RiskAssessment OnlineDriveMonitor::observe(const trace::DailyRecord& record) {
  if (record.day <= last_day_)
    throw std::invalid_argument("OnlineDriveMonitor: records must be in day order");
  last_day_ = record.day;
  ++days_observed_;
  FeatureExtractor::advance(state_, record);
  FeatureExtractor::extract(header_, record, state_, row_.row(0));
  RiskAssessment out;
  out.risk = model_->predict_proba(row_)[0];
  out.alert = out.risk >= threshold_;
  return out;
}

RiskAssessment FleetMonitor::observe(trace::DriveModel drive_model,
                                     std::uint32_t drive_index, std::int32_t deploy_day,
                                     const trace::DailyRecord& record) {
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  auto it = monitors_.find(uid);
  if (it == monitors_.end()) {
    it = monitors_
             .emplace(uid, OnlineDriveMonitor(*model_, threshold_, drive_model,
                                              deploy_day))
             .first;
  }
  const RiskAssessment assessment = it->second.observe(record);
  if (assessment.alert) ++alerts_;
  return assessment;
}

void FleetMonitor::retire(trace::DriveModel drive_model, std::uint32_t drive_index) {
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  monitors_.erase(uid);
}

}  // namespace ssdfail::core
