#pragma once

// Fleet characterization: every statistic behind the paper's Tables 1-5
// and Figures 1, 3-11, computed in ONE streaming pass over the fleet.
//
// CharacterizationSuite is a mergeable accumulator: feed drives with add(),
// combine per-thread partials with merge(), then read the per-experiment
// results.  All failure/repair quantities are derived from observable logs
// via core::derive_timeline — never from simulator ground truth.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/failure_timeline.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/streaming.hpp"
#include "stats/survival.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::core {

/// Variables of the Table 2 Spearman correlation matrix, in row order.
enum class CorrVar : std::size_t {
  kErase = 0,
  kFinalRead,
  kFinalWrite,
  kMeta,
  kRead,
  kResponse,
  kTimeout,
  kUncorrectable,
  kWrite,
  kPeCycle,
  kBadBlock,
  kDriveAge,
};
inline constexpr std::size_t kCorrVars = 12;
[[nodiscard]] std::string_view corr_var_name(CorrVar v) noexcept;

class CharacterizationSuite {
 public:
  /// window_days: the trace horizon, used to compute censoring times for
  /// the survival-analysis views (defaults to the paper's six years).
  explicit CharacterizationSuite(std::int32_t window_days = 2190);

  /// Fold one drive's observable history into every study.
  void add(const trace::DriveHistory& drive);

  /// Combine with another suite (order-insensitive).
  void merge(const CharacterizationSuite& other);

  // ---- Table 1: per-model proportion of drive days with each error. ----
  struct IncidenceCounts {
    std::array<std::uint64_t, trace::kNumErrorTypes> error_days{};
    std::uint64_t drive_days = 0;
  };
  [[nodiscard]] const IncidenceCounts& incidence(trace::DriveModel m) const {
    return incidence_[static_cast<std::size_t>(m)];
  }

  // ---- Table 2: Spearman correlations of per-drive cumulative counts. ----
  [[nodiscard]] std::vector<std::vector<double>> correlation_matrix() const;

  // ---- Table 3: failure incidence per model. ----
  struct FailureIncidence {
    std::uint64_t drives = 0;
    std::uint64_t drives_failed = 0;
    std::uint64_t failures = 0;
  };
  [[nodiscard]] const FailureIncidence& failure_incidence(trace::DriveModel m) const {
    return failure_incidence_[static_cast<std::size_t>(m)];
  }

  // ---- Table 4: distribution of per-drive lifetime failure counts. ----
  [[nodiscard]] const std::array<std::uint64_t, 8>& failure_count_histogram() const {
    return failure_count_hist_;
  }

  // ---- Table 5 / Fig 5: time to repair (censored: never returned). ----
  [[nodiscard]] const stats::CensoredEcdf& repair_time_days(trace::DriveModel m) const {
    return repair_time_[static_cast<std::size_t>(m)];
  }

  // ---- Fig 1: observation horizons. ----
  [[nodiscard]] const stats::Ecdf& max_age_years() const { return max_age_years_; }
  [[nodiscard]] const stats::Ecdf& data_count_years() const { return data_count_years_; }

  // ---- Fig 3: operational period lengths (censored mass = no failure). ----
  [[nodiscard]] const stats::CensoredEcdf& op_period_years() const { return op_period_years_; }

  // ---- Survival-analysis views of Figs 3/5 (per-observation censoring
  // times preserved, enabling Kaplan-Meier / Nelson-Aalen estimation). ----
  [[nodiscard]] const std::vector<stats::SurvivalObservation>& op_period_survival() const {
    return op_period_survival_;
  }
  [[nodiscard]] const std::vector<stats::SurvivalObservation>& repair_survival() const {
    return repair_survival_;
  }

  // ---- Fig 4: pre-swap non-operational period. ----
  [[nodiscard]] const stats::Ecdf& nonop_days() const { return nonop_days_; }

  // ---- Fig 6: failure age CDF + monthly failure rate. ----
  [[nodiscard]] const stats::Ecdf& failure_age_months() const { return failure_age_months_; }
  [[nodiscard]] const stats::BinnedRate& failure_rate_by_month() const {
    return failure_rate_by_month_;
  }

  // ---- Fig 7: daily write-count distribution per month of age. ----
  [[nodiscard]] const stats::ReservoirSample& writes_at_month(std::size_t month) const {
    return writes_by_month_[month];
  }
  static constexpr std::size_t kMaxMonths = 72;

  // ---- Fig 8/9: P/E cycles at failure. ----
  [[nodiscard]] const stats::Ecdf& pe_at_failure() const { return pe_at_failure_all_; }
  [[nodiscard]] const stats::Ecdf& pe_at_failure_young() const { return pe_at_failure_young_; }
  [[nodiscard]] const stats::Ecdf& pe_at_failure_old() const { return pe_at_failure_old_; }
  [[nodiscard]] const stats::BinnedRate& failure_rate_by_pe() const {
    return failure_rate_by_pe_;
  }

  // ---- Fig 10: end-of-life cumulative error CDFs by drive class. ----
  enum class DriveClass : std::size_t { kYoungFailed = 0, kOldFailed = 1, kNotFailed = 2 };
  [[nodiscard]] const stats::Ecdf& cum_ue_cdf(DriveClass c) const {
    return cum_ue_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const stats::Ecdf& cum_bad_block_cdf(DriveClass c) const {
    return cum_bb_[static_cast<std::size_t>(c)];
  }

  // ---- Fig 11: uncorrectable errors approaching failure. ----
  static constexpr std::size_t kLookbackDays = 8;  // offsets 0..7
  /// P(at least one UE within the last n days before failure), n = offset.
  [[nodiscard]] double ue_within_days(bool young, std::size_t n) const;
  /// Baseline: P(an arbitrary n-day window contains a UE), n in [1, 8).
  [[nodiscard]] double baseline_ue_within_days(std::size_t n) const;
  /// Nonzero UE counts observed exactly `offset` days before failure.
  [[nodiscard]] const stats::ReservoirSample& prefailure_ue_counts(bool young,
                                                                   std::size_t offset) const;

  [[nodiscard]] std::uint64_t total_drives() const;

 private:
  std::int32_t window_days_ = 2190;
  std::array<IncidenceCounts, trace::kNumModels> incidence_{};
  std::array<std::vector<double>, kCorrVars> corr_columns_;
  std::array<FailureIncidence, trace::kNumModels> failure_incidence_{};
  std::array<std::uint64_t, 8> failure_count_hist_{};
  std::array<stats::CensoredEcdf, trace::kNumModels> repair_time_;
  stats::Ecdf max_age_years_;
  stats::Ecdf data_count_years_;
  stats::CensoredEcdf op_period_years_;
  std::vector<stats::SurvivalObservation> op_period_survival_;
  std::vector<stats::SurvivalObservation> repair_survival_;
  stats::Ecdf nonop_days_;
  stats::Ecdf failure_age_months_;
  stats::BinnedRate failure_rate_by_month_{0.0, static_cast<double>(kMaxMonths), kMaxMonths};
  std::vector<stats::ReservoirSample> writes_by_month_;
  stats::Ecdf pe_at_failure_all_;
  stats::Ecdf pe_at_failure_young_;
  stats::Ecdf pe_at_failure_old_;
  stats::BinnedRate failure_rate_by_pe_{0.0, 6000.0, 24};
  std::array<stats::Ecdf, 3> cum_ue_;
  std::array<stats::Ecdf, 3> cum_bb_;
  // Fig 11 accumulators.
  std::array<std::array<std::uint64_t, kLookbackDays>, 2> ue_within_counts_{};
  std::array<std::uint64_t, 2> failure_counts_by_age_{};
  std::array<std::uint64_t, kLookbackDays> baseline_windows_{};
  std::array<std::uint64_t, kLookbackDays> baseline_windows_with_ue_{};
  std::vector<stats::ReservoirSample> prefailure_ue_counts_;  // [young*8 + offset]
};

}  // namespace ssdfail::core
