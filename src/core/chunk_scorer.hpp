#pragma once

// Columnar chunk scoring: drive the compiled flat-forest engine straight
// over an SSDF2 ColumnarFleetView — features are read column-direct from
// the mapped chunk spans (no per-row DailyRecord gather), rows are scored
// in blocks through FlatForest::predict_into, and chunks run in parallel.
//
// This is the offline/bulk sibling of FleetMonitor::observe_batch: score
// an entire stored fleet (backfills, model evaluation sweeps, alert
// replays) without materializing row structs.  Scores are bit-identical to
// gathering each record and scoring it through the same engine (pinned by
// tests/core/test_chunk_scorer.cpp).

#include <cstdint>
#include <vector>

#include "ml/flat_forest.hpp"
#include "parallel/thread_pool.hpp"
#include "store/columnar.hpp"

namespace ssdfail::core {

/// Scores for every record of a columnar fleet, positionally aligned in
/// storage order: chunk-major, drive-major within a chunk, day order
/// within a drive.
struct FleetScores {
  std::vector<std::uint64_t> uid;   ///< drive uid per record
  std::vector<std::int32_t> day;    ///< record day
  std::vector<float> score;         ///< model risk score

  [[nodiscard]] std::size_t size() const noexcept { return score.size(); }
};

/// Score every record of `view` with `engine`.  Chunk-parallel on `pool`
/// (each chunk is one unit of work; per-drive state stays sequential, as
/// cumulative features require).  Throws std::invalid_argument if the
/// engine's feature count does not match FeatureExtractor::count().
[[nodiscard]] FleetScores predict_chunk(
    const ml::FlatForest& engine, const store::ColumnarFleetView& view,
    parallel::ThreadPool& pool = parallel::ThreadPool::current());

}  // namespace ssdfail::core
