#pragma once

// Convenience driver: run the characterization suite (Tables 1-5,
// Figs 1, 3-11) over a whole (simulated) fleet in parallel.

#include "core/characterization.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {

// The analysis layer defines "young" from the paper (§4.1) without
// depending on the simulator; both must agree.
static_assert(kInfantAgeDays == sim::kInfantAgeDays,
              "core and sim disagree on the infant-age threshold");

/// One parallel streaming pass over the fleet.
[[nodiscard]] inline CharacterizationSuite characterize(const sim::FleetSimulator& fleet) {
  const std::int32_t window = fleet.config().window_days;
  return fleet.visit(
      [window] { return CharacterizationSuite{window}; },
      [](CharacterizationSuite& acc, const trace::DriveHistory& drive) { acc.add(drive); },
      [](CharacterizationSuite& dst, const CharacterizationSuite& src) { dst.merge(src); });
}

/// Same, over an in-memory fleet.
[[nodiscard]] inline CharacterizationSuite characterize(const trace::FleetTrace& fleet) {
  CharacterizationSuite suite;
  for (const auto& drive : fleet.drives) suite.add(drive);
  return suite;
}

}  // namespace ssdfail::core
