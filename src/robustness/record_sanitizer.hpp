#pragma once

// Online record sanitization for the ingestion -> scoring hot path.
//
// trace/validation.hpp can *report* violations offline; this class applies
// the same ViolationKind taxonomy per incoming record, in stream order,
// and decides what the scoring service does about each one:
//
//   repair      — counter regressions (P/E, bad blocks) clamp to the
//                 last-good cumulative value, a wandering factory-bad-block
//                 count is pinned to its first observation, and erase
//                 activity on a zero-write day is zeroed.  The repaired
//                 copy is scored.
//   drop        — an exact same-day duplicate of the last accepted record
//                 is silently discarded (scoring it twice would double the
//                 cumulative feature state).
//   quarantine  — irreparable records (out-of-order or conflicting days,
//                 records before deploy, saturated counter garbage) are
//                 routed to a bounded dead-letter queue with per-kind
//                 counters and never reach the model.
//
// The sanitizer never throws on data; accepted records are guaranteed to
// arrive at the drive monitors in strictly increasing day order.  One
// instance serves one FleetMonitor shard: it is NOT thread-safe, the
// caller provides exclusion (the shard mutex).

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/validation.hpp"

namespace ssdfail::robustness {

struct SanitizerConfig {
  /// Max records held in this sanitizer's dead-letter queue.  When full, a
  /// new quarantine EVICTS the oldest entry (the queue keeps the most
  /// recent violations — the ones an operator can still act on); every
  /// eviction is counted and mirrored to the registry, never silent.
  std::size_t dead_letter_capacity = 64;
  /// Registry to mirror counters into as process-wide families
  /// (`sanitizer_repaired_total{kind=...}` etc. — no per-shard labels;
  /// shards sharing a registry share children).  Null disables mirroring;
  /// FleetMonitor fills this in with its own registry.
  obs::MetricsRegistry* registry = nullptr;
};

enum class SanitizeAction : std::uint8_t {
  kClean,            ///< untouched — score it
  kRepaired,         ///< mutated copy — score it
  kDuplicateDropped, ///< exact same-day duplicate — skip silently
  kQuarantined,      ///< irreparable — dead-lettered, never scored
};

struct SanitizeResult {
  SanitizeAction action = SanitizeAction::kClean;
  trace::DailyRecord record;   ///< record to score (valid for kClean/kRepaired)
  trace::ViolationKind kind{}; ///< first violation seen (action != kClean)
};

/// A quarantined record with enough context to triage it offline.
struct DeadLetter {
  std::uint64_t drive_uid = 0;
  trace::ViolationKind kind{};
  trace::DailyRecord record;
};

/// Mergeable point-in-time counters (one block per shard, summed by the
/// FleetMonitor metrics snapshot).
struct SanitizerSnapshot {
  std::array<std::uint64_t, trace::kNumViolationKinds> repaired{};
  std::array<std::uint64_t, trace::kNumViolationKinds> quarantined{};
  std::uint64_t records_repaired = 0;     ///< scored after >=1 repair
  std::uint64_t records_quarantined = 0;  ///< dead-lettered (counted even past capacity)
  std::uint64_t duplicates_dropped = 0;   ///< exact same-day duplicates skipped
  std::uint64_t dead_letter_overflow = 0; ///< quarantines that arrived at a full queue
  std::uint64_t dead_letter_evicted = 0;  ///< oldest payloads dropped to admit newer ones
  std::vector<DeadLetter> dead_letters;   ///< bounded queue (most recent quarantines)

  void merge(const SanitizerSnapshot& other);
};

class RecordSanitizer {
 public:
  explicit RecordSanitizer(SanitizerConfig config = {});

  /// Classify (and possibly repair) one record for `drive_uid`.  Updates
  /// the drive's last-good state only when the record is accepted.
  [[nodiscard]] SanitizeResult sanitize(std::uint64_t drive_uid,
                                        std::int32_t deploy_day,
                                        const trace::DailyRecord& record);

  /// Forget a drive's last-good state (it was retired/swapped out).
  void forget(std::uint64_t drive_uid);

  [[nodiscard]] SanitizerSnapshot snapshot() const;

 private:
  struct DriveState {
    trace::DailyRecord last;          ///< last accepted (possibly repaired) record
    std::uint16_t factory_bad_blocks = 0;  ///< pinned first observation
  };

  void quarantine(std::uint64_t drive_uid, trace::ViolationKind kind,
                  const trace::DailyRecord& record);

  /// Registry mirror of counters_ (null entries when config_.registry is
  /// null).  Interned eagerly so exposition shows every kind at 0.
  struct Mirror {
    std::array<obs::Counter*, trace::kNumViolationKinds> repaired{};
    std::array<obs::Counter*, trace::kNumViolationKinds> quarantined{};
    obs::Counter* duplicates_dropped = nullptr;
    obs::Counter* dead_letter_overflow = nullptr;
    obs::Counter* dead_letter_evicted = nullptr;
  };

  SanitizerConfig config_;
  Mirror mirror_;
  std::unordered_map<std::uint64_t, DriveState> drives_;
  SanitizerSnapshot counters_;
};

}  // namespace ssdfail::robustness
