#include "robustness/fault_injector.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ssdfail::robustness {

namespace {

constexpr std::uint32_t kSaturated = std::numeric_limits<std::uint32_t>::max();

std::size_t fault_index(FaultKind kind) noexcept { return static_cast<std::size_t>(kind); }

}  // namespace

std::string_view fault_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDropDay: return "dropped day";
    case FaultKind::kDuplicate: return "duplicated record";
    case FaultKind::kOutOfOrder: return "out-of-order arrival";
    case FaultKind::kPeCycleReset: return "P/E cycle reset";
    case FaultKind::kBadBlockReset: return "bad-block reset";
    case FaultKind::kFactoryFlip: return "factory bad-block flip";
    case FaultKind::kSaturatedGarbage: return "saturated garbage";
    case FaultKind::kBeforeDeploy: return "record before deploy";
    case FaultKind::kEraseNoWrite: return "erases on zero-write day";
    case FaultKind::kTruncateStream: return "truncated stream";
    case FaultKind::kSwapOutOfOrder: return "swap days out of order";
    case FaultKind::kSwapBeforeActivity: return "swap before activity";
    case FaultKind::kTornWrite: return "torn WAL write";
    case FaultKind::kPartialSegment: return "partial WAL segment";
    case FaultKind::kDuplicateDelivery: return "duplicate WAL delivery";
    case FaultKind::kClassCounterReset: return "class counter reset";
  }
  return "unknown";
}

FaultRates FaultRates::uniform(double total) noexcept {
  total = std::clamp(total, 0.0, 1.0);
  // Nine per-record faults split the budget evenly; truncation gets a tenth
  // of one share (9s + s/10 = total).
  const double share = total / 9.1;
  FaultRates r;
  r.drop_day = share;
  r.duplicate = share;
  r.out_of_order = share;
  r.pe_cycle_reset = share;
  r.bad_block_reset = share;
  r.factory_flip = share;
  r.saturated_garbage = share;
  r.before_deploy = share;
  r.erase_no_write = share;
  r.truncate_stream = share / 10.0;
  return r;
}

std::uint64_t CorruptedStream::total_injected() const noexcept {
  std::uint64_t n = 0;
  for (std::uint64_t k : injected) n += k;
  return n;
}

std::size_t CorruptedStream::count(StreamLabel l) const noexcept {
  std::size_t n = 0;
  for (StreamLabel x : label)
    if (x == l) ++n;
  return n;
}

CorruptedStream FaultInjector::corrupt(std::span<const core::FleetObservation> stream) {
  CorruptedStream out;
  out.observations.reserve(stream.size());
  out.origin.reserve(stream.size());
  out.label.reserve(stream.size());

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const core::FleetObservation& source = stream[i];
    const std::uint64_t uid = source.uid();
    stats::Rng rng({seed_, next_record_++});

    if (truncated_.count(uid) > 0) {
      ++out.injected[fault_index(FaultKind::kTruncateStream)];
      continue;  // the rest of this drive's stream is gone
    }

    SimState* sim = nullptr;
    if (auto it = sim_.find(uid); it != sim_.end()) sim = &it->second;
    const bool has_last = sim != nullptr && sim->has_last;

    // At most one fault per record: sequential seeded trials in fixed order,
    // skipping faults the sanitizer could not be guaranteed to flag here.
    std::optional<FaultKind> fault;
    const struct {
      FaultKind kind;
      double rate;
      bool available;
    } candidates[] = {
        {FaultKind::kDropDay, rates_.drop_day, true},
        {FaultKind::kTruncateStream, rates_.truncate_stream, true},
        {FaultKind::kDuplicate, rates_.duplicate, true},
        {FaultKind::kOutOfOrder, rates_.out_of_order, has_last},
        {FaultKind::kPeCycleReset, rates_.pe_cycle_reset,
         has_last && sim->last.pe_cycles > 0},
        {FaultKind::kBadBlockReset, rates_.bad_block_reset,
         has_last && sim->last.bad_blocks > 0},
        {FaultKind::kFactoryFlip, rates_.factory_flip, has_last},
        {FaultKind::kSaturatedGarbage, rates_.saturated_garbage, true},
        {FaultKind::kBeforeDeploy, rates_.before_deploy, true},
        {FaultKind::kEraseNoWrite, rates_.erase_no_write, true},
    };
    for (const auto& c : candidates) {
      const bool hit = c.rate > 0.0 && rng.bernoulli(c.rate);
      if (hit && c.available) {
        fault = c.kind;
        break;
      }
    }

    auto ensure_sim = [&]() -> SimState& {
      if (sim == nullptr) sim = &sim_.try_emplace(uid).first->second;
      return *sim;
    };
    auto accept = [&](const trace::DailyRecord& accepted) {
      SimState& s = ensure_sim();
      if (!s.has_last) s.factory_bad_blocks = accepted.factory_bad_blocks;
      s.last = accepted;
      s.has_last = true;
    };
    auto emit = [&](const core::FleetObservation& obs, StreamLabel label) {
      out.observations.push_back(obs);
      out.origin.push_back(i);
      out.label.push_back(label);
    };
    const StreamLabel untouched_label =
        (sim != nullptr && sim->tainted) ? StreamLabel::kTainted : StreamLabel::kClean;

    if (!fault) {
      accept(source.record);
      emit(source, untouched_label);
      continue;
    }
    ++out.injected[fault_index(*fault)];

    core::FleetObservation obs = source;
    switch (*fault) {
      case FaultKind::kDropDay:
        ensure_sim().tainted = true;  // later records miss this day's state
        continue;
      case FaultKind::kTruncateStream:
        truncated_[uid] = true;
        ensure_sim().tainted = true;
        continue;
      case FaultKind::kDuplicate:
        // Original first (accepted as usual), then the exact replay.
        accept(source.record);
        emit(source, untouched_label);
        emit(source, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kOutOfOrder:
        obs.record.day =
            sim->last.day - static_cast<std::int32_t>(rng.uniform_index(3));
        sim->tainted = true;  // the clean run scored this record; this one won't
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kPeCycleReset:
        obs.record.pe_cycles =
            static_cast<std::uint32_t>(rng.uniform_index(sim->last.pe_cycles));
        // Repair clamps back to last-good P/E; cumulative feature state is
        // untouched by P/E, so the rest of the drive's stream stays clean.
        accept([&] {
          trace::DailyRecord repaired = obs.record;
          repaired.pe_cycles = sim->last.pe_cycles;
          return repaired;
        }());
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kBadBlockReset:
        obs.record.bad_blocks =
            static_cast<std::uint32_t>(rng.uniform_index(sim->last.bad_blocks));
        accept([&] {
          trace::DailyRecord repaired = obs.record;
          repaired.bad_blocks = sim->last.bad_blocks;
          return repaired;
        }());
        sim->tainted = true;  // clamped value shifts new-bad-blocks deltas downstream
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kFactoryFlip:
        obs.record.factory_bad_blocks = static_cast<std::uint16_t>(
            obs.record.factory_bad_blocks + 1 + rng.uniform_index(5));
        // Repair restores the pinned first-seen count == the source value,
        // so the accepted record equals the source record exactly.
        accept(source.record);
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kSaturatedGarbage: {
        switch (rng.uniform_index(4)) {
          case 0: obs.record.reads = kSaturated; break;
          case 1: obs.record.writes = kSaturated; break;
          case 2: obs.record.pe_cycles = kSaturated; break;
          default:
            obs.record.errors[rng.uniform_index(trace::kNumErrorTypes)] = kSaturated;
        }
        ensure_sim().tainted = true;
        emit(obs, StreamLabel::kCorrupt);
        continue;
      }
      case FaultKind::kBeforeDeploy:
        obs.record.day =
            obs.deploy_day - 1 - static_cast<std::int32_t>(rng.uniform_index(30));
        ensure_sim().tainted = true;
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kEraseNoWrite:
        obs.record.writes = 0;
        obs.record.erases = std::max<std::uint32_t>(1, obs.record.erases);
        accept([&] {
          trace::DailyRecord repaired = obs.record;
          repaired.erases = 0;
          return repaired;
        }());
        sim->tainted = true;  // cumulative write/erase totals diverge downstream
        emit(obs, StreamLabel::kCorrupt);
        continue;
      case FaultKind::kSwapOutOfOrder:
      case FaultKind::kSwapBeforeActivity:
      case FaultKind::kTornWrite:
      case FaultKind::kPartialSegment:
      case FaultKind::kDuplicateDelivery:
      case FaultKind::kClassCounterReset:
        break;  // history-/WAL-only faults never drawn on streams
    }
  }
  return out;
}

void FaultInjector::reset() {
  next_record_ = 0;
  sim_.clear();
  truncated_.clear();
}

std::optional<trace::ViolationKind> FaultInjector::inject_into_history(
    trace::DriveHistory& drive, FaultKind kind, stats::Rng& rng) {
  auto& records = drive.records;
  if (records.size() < 3)
    throw std::invalid_argument("inject_into_history: need >= 3 records");
  // A middle record with both neighbours, so pairwise rules fire exactly once.
  const std::size_t k = 1 + rng.uniform_index(records.size() - 2);

  switch (kind) {
    case FaultKind::kDropDay:
      records.erase(records.begin() + static_cast<std::ptrdiff_t>(k));
      return std::nullopt;  // a gap is indistinguishable from non-reporting
    case FaultKind::kTruncateStream:
      records.resize(k);
      return std::nullopt;
    case FaultKind::kDuplicate:
      records.insert(records.begin() + static_cast<std::ptrdiff_t>(k),
                     records[k]);
      return trace::ViolationKind::kNonMonotoneDays;
    case FaultKind::kOutOfOrder:
      records[k].day = records[k - 1].day;
      return trace::ViolationKind::kNonMonotoneDays;
    case FaultKind::kPeCycleReset:
      if (records[k - 1].pe_cycles == 0)
        throw std::invalid_argument("inject_into_history: need growing P/E");
      records[k].pe_cycles =
          static_cast<std::uint32_t>(rng.uniform_index(records[k - 1].pe_cycles));
      return trace::ViolationKind::kDecreasingPeCycles;
    case FaultKind::kBadBlockReset:
      if (records[k - 1].bad_blocks == 0)
        throw std::invalid_argument("inject_into_history: need growing bad blocks");
      records[k].bad_blocks =
          static_cast<std::uint32_t>(rng.uniform_index(records[k - 1].bad_blocks));
      return trace::ViolationKind::kDecreasingBadBlocks;
    case FaultKind::kFactoryFlip:
      records[k].factory_bad_blocks = static_cast<std::uint16_t>(
          records[k].factory_bad_blocks + 1 + rng.uniform_index(5));
      return trace::ViolationKind::kFactoryBadBlocksChanged;
    case FaultKind::kSaturatedGarbage:
      records[k].reads = kSaturated;
      return trace::ViolationKind::kImplausibleValue;
    case FaultKind::kBeforeDeploy:
      // The first record, so day order with its successor is preserved.
      records.front().day =
          drive.deploy_day - 1 - static_cast<std::int32_t>(rng.uniform_index(10));
      return trace::ViolationKind::kRecordBeforeDeploy;
    case FaultKind::kEraseNoWrite:
      records[k].writes = 0;
      records[k].erases = std::max<std::uint32_t>(1, records[k].erases);
      return trace::ViolationKind::kErasesWithoutWrites;
    case FaultKind::kSwapOutOfOrder: {
      const std::int32_t base = records.back().day + 3;
      drive.swaps = {{base}, {base - static_cast<std::int32_t>(rng.uniform_index(2))}};
      return trace::ViolationKind::kSwapsOutOfOrder;
    }
    case FaultKind::kSwapBeforeActivity:
      drive.swaps = {{records.front().day -
                      static_cast<std::int32_t>(rng.uniform_index(3))}};
      return trace::ViolationKind::kSwapBeforeActivity;
    case FaultKind::kClassCounterReset:
      // Regress a class-specific cumulative counter — table-driven via the
      // schema's field list, so a future channel is covered automatically.
      for (const trace::RecordCounterField& f : trace::kExtCounterFields) {
        if (!f.cumulative) continue;
        if (records[k - 1].*f.field == 0) continue;
        records[k].*f.field =
            static_cast<std::uint32_t>(rng.uniform_index(records[k - 1].*f.field));
        return trace::decreasing_kind(f);
      }
      throw std::invalid_argument(
          "inject_into_history: need a growing class-specific counter");
    case FaultKind::kTornWrite:
    case FaultKind::kPartialSegment:
    case FaultKind::kDuplicateDelivery:
      throw std::invalid_argument("inject_into_history: WAL-only fault kind");
  }
  return std::nullopt;
}

FaultInjector::WalFault FaultInjector::inject_into_wal(
    std::vector<char>& wal, FaultKind kind, stats::Rng& rng,
    std::span<const std::size_t> segment_offsets) {
  if (segment_offsets.empty())
    throw std::invalid_argument("inject_into_wal: no segments");
  const std::size_t n = segment_offsets.size();
  auto segment_end = [&](std::size_t k) {
    return k + 1 < n ? segment_offsets[k + 1] : wal.size();
  };
  // A cut point strictly inside segment k (never a clean boundary).
  auto cut_inside = [&](std::size_t k) {
    const std::size_t begin = segment_offsets[k];
    const std::size_t end = segment_end(k);
    if (end <= begin + 1)
      throw std::invalid_argument("inject_into_wal: segment too small to cut");
    return begin + 1 + rng.uniform_index(end - begin - 1);
  };

  WalFault result;
  switch (kind) {
    case FaultKind::kTornWrite: {
      result.segment = n - 1;
      result.offset = cut_inside(result.segment);
      wal.resize(result.offset);  // crash mid-append: the tail never hit disk
      return result;
    }
    case FaultKind::kPartialSegment: {
      result.segment = rng.uniform_index(n);
      result.offset = cut_inside(result.segment);
      // A failed page write leaves zeroes behind data that DID become
      // durable later — the mid-file hole recovery must stop at, not skip.
      std::fill(wal.begin() + static_cast<std::ptrdiff_t>(result.offset),
                wal.begin() + static_cast<std::ptrdiff_t>(segment_end(result.segment)),
                '\0');
      return result;
    }
    case FaultKind::kDuplicateDelivery: {
      result.segment = rng.uniform_index(n);
      result.offset = wal.size();
      const std::size_t begin = segment_offsets[result.segment];
      const std::size_t end = segment_end(result.segment);
      // Append a verbatim replay of the segment (insert via copy: the
      // source range lives in the same vector being grown).
      const std::vector<char> copy(wal.begin() + static_cast<std::ptrdiff_t>(begin),
                                   wal.begin() + static_cast<std::ptrdiff_t>(end));
      wal.insert(wal.end(), copy.begin(), copy.end());
      return result;
    }
    default:
      throw std::invalid_argument("inject_into_wal: not a WAL fault kind");
  }
}

}  // namespace ssdfail::robustness
