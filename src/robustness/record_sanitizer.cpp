#include "robustness/record_sanitizer.hpp"

#include <string>

namespace ssdfail::robustness {

namespace {

std::size_t kind_index(trace::ViolationKind kind) noexcept {
  return static_cast<std::size_t>(kind);
}

}  // namespace

RecordSanitizer::RecordSanitizer(SanitizerConfig config) : config_(config) {
  if (config_.registry == nullptr) return;
  obs::MetricsRegistry& reg = *config_.registry;
  for (trace::ViolationKind kind : trace::kAllViolationKinds) {
    const obs::Labels labels{{"kind", std::string(trace::violation_slug(kind))}};
    mirror_.repaired[kind_index(kind)] =
        &reg.counter("sanitizer_repaired_total", labels,
                     "per-kind repairs applied to accepted records");
    mirror_.quarantined[kind_index(kind)] =
        &reg.counter("sanitizer_quarantined_total", labels,
                     "per-kind irreparable records dead-lettered");
  }
  mirror_.duplicates_dropped =
      &reg.counter("sanitizer_duplicates_dropped_total", {},
                   "exact same-day duplicate records skipped");
  mirror_.dead_letter_overflow =
      &reg.counter("sanitizer_dead_letter_overflow_total", {},
                   "quarantines that arrived while the dead-letter queue was full");
  mirror_.dead_letter_evicted =
      &reg.counter("sanitizer_dead_letter_evicted_total", {},
                   "oldest dead-letter payloads dropped to admit newer quarantines");
}

void SanitizerSnapshot::merge(const SanitizerSnapshot& other) {
  for (std::size_t k = 0; k < trace::kNumViolationKinds; ++k) {
    repaired[k] += other.repaired[k];
    quarantined[k] += other.quarantined[k];
  }
  records_repaired += other.records_repaired;
  records_quarantined += other.records_quarantined;
  duplicates_dropped += other.duplicates_dropped;
  dead_letter_overflow += other.dead_letter_overflow;
  dead_letter_evicted += other.dead_letter_evicted;
  dead_letters.insert(dead_letters.end(), other.dead_letters.begin(),
                      other.dead_letters.end());
}

void RecordSanitizer::quarantine(std::uint64_t drive_uid, trace::ViolationKind kind,
                                 const trace::DailyRecord& record) {
  ++counters_.quarantined[kind_index(kind)];
  ++counters_.records_quarantined;
  if (obs::Counter* c = mirror_.quarantined[kind_index(kind)]) c->inc();
  if (counters_.dead_letters.size() >= config_.dead_letter_capacity) {
    // Keep the queue a window over the most RECENT quarantines: evict the
    // oldest payload (loudly — both counters are registry-mirrored) rather
    // than silently refusing the new one.
    ++counters_.dead_letter_overflow;
    if (mirror_.dead_letter_overflow != nullptr) mirror_.dead_letter_overflow->inc();
    if (config_.dead_letter_capacity == 0) return;
    const std::size_t evict =
        counters_.dead_letters.size() - config_.dead_letter_capacity + 1;
    counters_.dead_letters.erase(counters_.dead_letters.begin(),
                                 counters_.dead_letters.begin() +
                                     static_cast<std::ptrdiff_t>(evict));
    counters_.dead_letter_evicted += evict;
    if (mirror_.dead_letter_evicted != nullptr) mirror_.dead_letter_evicted->inc(evict);
  }
  counters_.dead_letters.push_back({drive_uid, kind, record});
}

SanitizeResult RecordSanitizer::sanitize(std::uint64_t drive_uid,
                                         std::int32_t deploy_day,
                                         const trace::DailyRecord& record) {
  SanitizeResult result;

  // Irreparable garbage first: a saturated counter poisons every downstream
  // rule (it would look like a huge counter jump), so classify it before
  // anything else and never let it touch last-good state.
  if (trace::implausible_record(record)) {
    result.action = SanitizeAction::kQuarantined;
    result.kind = trace::ViolationKind::kImplausibleValue;
    quarantine(drive_uid, result.kind, record);
    return result;
  }
  if (record.day < deploy_day) {
    result.action = SanitizeAction::kQuarantined;
    result.kind = trace::ViolationKind::kRecordBeforeDeploy;
    quarantine(drive_uid, result.kind, record);
    return result;
  }

  auto it = drives_.find(drive_uid);
  if (it != drives_.end()) {
    const DriveState& state = it->second;
    if (record.day == state.last.day && record == state.last) {
      // Exact replay of the accepted record: repair-by-drop.
      result.action = SanitizeAction::kDuplicateDropped;
      result.kind = trace::ViolationKind::kNonMonotoneDays;
      ++counters_.duplicates_dropped;
      ++counters_.repaired[kind_index(result.kind)];
      if (mirror_.duplicates_dropped != nullptr) mirror_.duplicates_dropped->inc();
      if (obs::Counter* c = mirror_.repaired[kind_index(result.kind)]) c->inc();
      return result;
    }
    if (record.day <= state.last.day) {
      // Out-of-order or same-day-conflicting: there is no principled merge,
      // so the record goes to the dead-letter queue.
      result.action = SanitizeAction::kQuarantined;
      result.kind = trace::ViolationKind::kNonMonotoneDays;
      quarantine(drive_uid, result.kind, record);
      return result;
    }
  }

  // Repairable faults: fix on a copy, count each kind once per record.
  trace::DailyRecord repaired = record;
  bool any_repair = false;
  auto note_repair = [&](trace::ViolationKind kind) {
    if (!any_repair) {
      result.kind = kind;  // first violation wins the result label
      ++counters_.records_repaired;
    }
    any_repair = true;
    ++counters_.repaired[kind_index(kind)];
    if (obs::Counter* c = mirror_.repaired[kind_index(kind)]) c->inc();
  };

  if (it != drives_.end()) {
    const DriveState& state = it->second;
    // Every cumulative counter the schema declares (including the
    // class-specific channels) clamps to last-good — the field list comes
    // from trace::kRecordCounterFields, never hard-coded column names.
    for (const trace::RecordCounterField& f : trace::kRecordCounterFields) {
      if (!f.cumulative) continue;
      if (repaired.*f.field < state.last.*f.field) {
        repaired.*f.field = state.last.*f.field;  // clamp to last-good cumulative
        note_repair(trace::decreasing_kind(f));
      }
    }
    if (repaired.factory_bad_blocks != state.factory_bad_blocks) {
      repaired.factory_bad_blocks = state.factory_bad_blocks;  // pin first-seen
      note_repair(trace::ViolationKind::kFactoryBadBlocksChanged);
    }
  }
  if (repaired.erases > 0 && repaired.writes == 0) {
    repaired.erases = 0;  // a zero-write day cannot erase; zero the garbage
    note_repair(trace::ViolationKind::kErasesWithoutWrites);
  }

  // Accept: advance last-good state with the (possibly repaired) record.
  if (it == drives_.end()) {
    DriveState fresh;
    fresh.last = repaired;
    fresh.factory_bad_blocks = repaired.factory_bad_blocks;
    drives_.emplace(drive_uid, fresh);
  } else {
    it->second.last = repaired;
  }
  result.action = any_repair ? SanitizeAction::kRepaired : SanitizeAction::kClean;
  result.record = repaired;
  return result;
}

void RecordSanitizer::forget(std::uint64_t drive_uid) { drives_.erase(drive_uid); }

SanitizerSnapshot RecordSanitizer::snapshot() const { return counters_; }

}  // namespace ssdfail::robustness
