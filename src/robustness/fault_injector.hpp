#pragma once

// Deterministic fault injection over fleet-observation streams.
//
// The chaos half of the robustness layer: given a clean, day-ordered
// replay stream, corrupt() re-emits it with seeded per-record faults —
// dropped days, exact duplicates, out-of-order arrivals, cumulative
// counter resets, saturated field garbage, records before deploy, erase
// activity on zero-write days, and truncated drive streams.  Randomness
// derives from stats/rng substreams keyed by (seed, running record
// index), so a run is bit-reproducible regardless of batch boundaries.
//
// The injector labels every emitted record so a chaos test can assert the
// sanitizer's invariants exactly:
//
//   kClean   — untouched AND its drive's state is unperturbed: its score
//              must be bit-identical to the clean replay.
//   kTainted — untouched record of a drive whose earlier stream was
//              perturbed (a dropped/quarantined/repaired record changed
//              the cumulative feature state).  Scored, but its score may
//              legitimately differ from the clean run.
//   kCorrupt — carries an injected fault: the sanitizer must repair,
//              duplicate-drop, or quarantine it (never score it as-is).
//
// To guarantee kCorrupt records are detectable, the injector mirrors the
// sanitizer's last-accepted state per drive (day / P/E / bad blocks /
// factory count) and only applies a fault when the sanitizer is certain
// to flag it — e.g. a P/E reset is only injected once the drive has an
// accepted positive P/E count to regress from.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fleet_observation.hpp"
#include "stats/rng.hpp"
#include "trace/validation.hpp"

namespace ssdfail::robustness {

enum class FaultKind : std::uint8_t {
  kDropDay = 0,        ///< record silently dropped from the stream
  kDuplicate,          ///< record emitted twice (exact same-day duplicate)
  kOutOfOrder,         ///< day rewritten to/behind the last accepted day
  kPeCycleReset,       ///< cumulative P/E regressed (controller reset)
  kBadBlockReset,      ///< cumulative bad blocks regressed
  kFactoryFlip,        ///< factory bad-block count changed mid-stream
  kSaturatedGarbage,   ///< a counter saturated to 0xFFFFFFFF
  kBeforeDeploy,       ///< day rewritten before the deploy day
  kEraseNoWrite,       ///< writes zeroed while erases stay positive
  kTruncateStream,     ///< the drive's remaining records are dropped
  kSwapOutOfOrder,     ///< (history-only) swap days reordered
  kSwapBeforeActivity, ///< (history-only) swap precedes every record
  kTornWrite,          ///< (WAL-only) file cut mid-way through the final segment
  kPartialSegment,     ///< (WAL-only) a segment's tail zeroed (failed page write)
  kDuplicateDelivery,  ///< (WAL-only) a whole segment delivered twice
  kClassCounterReset,  ///< (history-only) a class-specific cumulative counter
                       ///< (reallocated sectors / media wear) regressed
};

inline constexpr std::size_t kNumFaultKinds = 16;

[[nodiscard]] std::string_view fault_name(FaultKind kind) noexcept;

/// Per-record probabilities for each stream fault (swap faults are
/// history-only and have no stream rate).
struct FaultRates {
  double drop_day = 0.0;
  double duplicate = 0.0;
  double out_of_order = 0.0;
  double pe_cycle_reset = 0.0;
  double bad_block_reset = 0.0;
  double factory_flip = 0.0;
  double saturated_garbage = 0.0;
  double before_deploy = 0.0;
  double erase_no_write = 0.0;
  double truncate_stream = 0.0;

  /// Spread a total per-record corruption probability evenly over the nine
  /// per-record faults; stream truncation gets a tenth of a share (it wipes
  /// whole tails, so an even share would destroy the stream at high rates).
  [[nodiscard]] static FaultRates uniform(double total) noexcept;
};

enum class StreamLabel : std::uint8_t { kClean = 0, kTainted, kCorrupt };

struct CorruptedStream {
  std::vector<core::FleetObservation> observations;
  /// For each emitted position, the index of the source record it derives
  /// from (duplicates point at their original).
  std::vector<std::size_t> origin;
  std::vector<StreamLabel> label;
  std::array<std::uint64_t, kNumFaultKinds> injected{};

  [[nodiscard]] std::uint64_t total_injected() const noexcept;
  [[nodiscard]] std::size_t count(StreamLabel l) const noexcept;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultRates rates) : seed_(seed), rates_(rates) {}

  /// Corrupt a day-ordered stream segment.  Stateful: per-drive accepted
  /// state and truncation marks persist across calls, so a stream may be
  /// fed batch-by-batch with the same result as one call.
  [[nodiscard]] CorruptedStream corrupt(std::span<const core::FleetObservation> stream);

  /// Drop all cross-call state (fresh run with the same seed).
  void reset();

  /// Mutate one drive history in place to exhibit `kind`, choosing targets
  /// so validate_history flags ONLY the matching ViolationKind.  Returns
  /// that kind, or nullopt for faults that leave the history structurally
  /// legal (dropped/truncated data is indistinguishable from a drive that
  /// simply did not report).  The history needs >= 3 records with growing
  /// P/E and bad-block counters for every kind to be injectable.
  static std::optional<trace::ViolationKind> inject_into_history(
      trace::DriveHistory& drive, FaultKind kind, stats::Rng& rng);

  /// Where a WAL-image fault landed (for asserting recovery behavior).
  struct WalFault {
    std::size_t segment = 0;  ///< index into `segment_offsets`
    std::size_t offset = 0;   ///< first corrupted/duplicated byte offset
  };

  /// Mutate a serialized write-ahead-log image in place to exhibit one of
  /// the WAL-only fault kinds, seeded like every other injector draw.  The
  /// injector stays framing-agnostic: `segment_offsets` gives the byte
  /// offset of each appended segment (ascending; the file tail past the
  /// last offset is the final segment), as reported by the WAL writer.
  ///
  ///   kTornWrite        — the image is cut at a random byte strictly
  ///                       inside the final segment (crash mid-append).
  ///   kPartialSegment   — a random segment's tail is zeroed in place (a
  ///                       failed page write behind later durable data).
  ///   kDuplicateDelivery— a random whole segment's bytes are appended
  ///                       again at the end (at-least-once redelivery).
  ///
  /// Throws std::invalid_argument for non-WAL kinds, an empty offset list,
  /// or a segment too small to cut.
  static WalFault inject_into_wal(std::vector<char>& wal, FaultKind kind,
                                  stats::Rng& rng,
                                  std::span<const std::size_t> segment_offsets);

 private:
  struct SimState {
    trace::DailyRecord last;  ///< mirror of the sanitizer's last accepted record
    std::uint16_t factory_bad_blocks = 0;
    bool has_last = false;  ///< at least one record accepted for this drive
    bool tainted = false;   ///< earlier stream perturbed; later records kTainted
  };

  std::uint64_t seed_;
  FaultRates rates_;
  std::uint64_t next_record_ = 0;  ///< running index keying per-record rng
  std::unordered_map<std::uint64_t, SimState> sim_;
  std::unordered_map<std::uint64_t, bool> truncated_;
};

}  // namespace ssdfail::robustness
