file(REMOVE_RECURSE
  "libssdfail_robustness.a"
)
