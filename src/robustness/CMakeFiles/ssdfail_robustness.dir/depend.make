# Empty dependencies file for ssdfail_robustness.
# This may be replaced when dependencies are built.
