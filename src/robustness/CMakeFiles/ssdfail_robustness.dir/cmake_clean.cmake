file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_robustness.dir/fault_injector.cpp.o"
  "CMakeFiles/ssdfail_robustness.dir/fault_injector.cpp.o.d"
  "CMakeFiles/ssdfail_robustness.dir/record_sanitizer.cpp.o"
  "CMakeFiles/ssdfail_robustness.dir/record_sanitizer.cpp.o.d"
  "libssdfail_robustness.a"
  "libssdfail_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
