#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ssdfail::obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Round-robin stripe assignment: cheaper and more evenly spread than
/// hashing thread ids, and stable for the thread's lifetime.
std::atomic<std::size_t> g_next_stripe{0};

std::string canonical_label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

Labels canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_metric_name(labels[i].first))
      throw std::invalid_argument("obs: invalid label name '" + labels[i].first + "'");
    if (i > 0 && labels[i].first == labels[i - 1].first)
      throw std::invalid_argument("obs: duplicate label '" + labels[i].first + "'");
  }
  return labels;
}

}  // namespace

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

std::size_t Counter::stripe_index() noexcept {
  thread_local const std::size_t index =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("obs::Histogram: no buckets");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) || (i > 0 && bounds_[i] <= bounds_[i - 1]))
      throw std::invalid_argument("obs::Histogram: bounds must be finite, increasing");
  }
}

void Histogram::observe(double value, std::uint64_t count) noexcept {
  if (!enabled() || count == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());  // +Inf when past end
  buckets_[i].fetch_add(count, std::memory_order_relaxed);
  if (std::isfinite(value))
    detail::atomic_add(sum_, value * static_cast<double>(count));
}

double Histogram::upper_bound(std::size_t i) const noexcept {
  return i < bounds_.size() ? bounds_[i] : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::total_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::string_view metric_type_name(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

std::string Sample::key() const {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

const Sample* RegistrySnapshot::find(std::string_view name) const noexcept {
  for (const Sample& s : samples)
    if (s.name == name) return &s;
  return nullptr;
}

const Sample* RegistrySnapshot::find(std::string_view name,
                                     const Labels& labels) const noexcept {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const Sample& s : samples)
    if (s.name == name && s.labels == sorted) return &s;
  return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: metric handles embedded in other leaked or
  // static-lifetime objects (thread pools, monitors) may be touched during
  // static teardown.  Reachable-from-static, so LSan stays quiet.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!word(name[0])) return false;
  for (char c : name.substr(1))
    if (!word(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

std::vector<double> equal_width_bounds(double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo)
    throw std::invalid_argument("equal_width_bounds: bad range/bins");
  std::vector<double> bounds(bins);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i)
    bounds[i] = lo + width * static_cast<double>(i + 1);
  bounds.back() = hi;  // exact, no accumulation drift
  return bounds;
}

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name,
                                                     MetricType type,
                                                     std::string_view help,
                                                     std::span<const double> bounds) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("obs: invalid metric name '" + std::string(name) + "'");
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    family.bounds.assign(bounds.begin(), bounds.end());
    it = families_.emplace(std::string(name), std::move(family)).first;
    return it->second;
  }
  Family& family = it->second;
  if (family.type != type)
    throw std::invalid_argument("obs: metric '" + std::string(name) +
                                "' re-registered as a different type");
  if (type == MetricType::kHistogram &&
      !std::equal(bounds.begin(), bounds.end(), family.bounds.begin(),
                  family.bounds.end()))
    throw std::invalid_argument("obs: histogram '" + std::string(name) +
                                "' re-registered with different buckets");
  if (family.help.empty() && !help.empty()) family.help = std::string(help);
  return family;
}

MetricsRegistry::Child& MetricsRegistry::child_for(Family& family, const Labels& labels) {
  Labels canonical = canonicalize(labels);
  const std::string key = canonical_label_key(canonical);
  auto it = family.children.find(key);
  if (it == family.children.end()) {
    Child child;
    child.labels = std::move(canonical);
    it = family.children.emplace(key, std::move(child)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels,
                                  std::string_view help) {
  std::scoped_lock lock(mutex_);
  Child& child = child_for(family_for(name, MetricType::kCounter, help, {}), labels);
  if (!child.counter) child.counter = std::make_unique<Counter>();
  return *child.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels,
                              std::string_view help) {
  std::scoped_lock lock(mutex_);
  Child& child = child_for(family_for(name, MetricType::kGauge, help, {}), labels);
  if (!child.gauge) child.gauge = std::make_unique<Gauge>();
  return *child.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds,
                                      const Labels& labels, std::string_view help) {
  std::scoped_lock lock(mutex_);
  Child& child =
      child_for(family_for(name, MetricType::kHistogram, help, bounds), labels);
  if (!child.histogram) child.histogram = std::make_unique<Histogram>(bounds);
  return *child.histogram;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::scoped_lock lock(mutex_);
  for (const auto& [name, family] : families_) {
    for (const auto& [key, child] : family.children) {
      (void)key;
      Sample s;
      s.name = name;
      s.help = family.help;
      s.type = family.type;
      s.labels = child.labels;
      switch (family.type) {
        case MetricType::kCounter:
          s.value = static_cast<double>(child.counter->value());
          break;
        case MetricType::kGauge:
          s.value = child.gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *child.histogram;
          s.bucket_bounds = h.bounds();
          s.buckets.resize(h.bucket_count());
          for (std::size_t i = 0; i < h.bucket_count(); ++i) s.buckets[i] = h.bucket(i);
          s.count = 0;
          for (std::uint64_t b : s.buckets) s.count += b;
          s.sum = h.sum();
          break;
        }
      }
      snap.samples.push_back(std::move(s));
    }
  }
  return snap;
}

std::size_t MetricsRegistry::metric_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) {
    (void)name;
    n += family.children.size();
  }
  return n;
}

}  // namespace ssdfail::obs
