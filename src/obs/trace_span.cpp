#include "obs/trace_span.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace ssdfail::obs {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Log2 duration buckets for the per-site p50/p99 estimate: bucket j
/// covers [2^j, 2^(j+1)) ns, clamped to kLatBuckets entries (~2.3 min top
/// edge) — coarse on purpose; spans are for attribution, not SLOs.
constexpr std::size_t kLatBuckets = 48;
constexpr std::size_t kRingCapacity = 256;

std::size_t latency_bucket(std::uint64_t ns) noexcept {
  const std::size_t j = ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns) - 1);
  return std::min(j, kLatBuckets - 1);
}

double bucket_upper_us(std::size_t j) noexcept {
  return static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(j + 1, 62)) /
         1000.0;
}

struct SiteAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::array<std::uint64_t, kLatBuckets> buckets{};
};

/// One thread's span sink: written only by its owner under its own mutex
/// (uncontended), read by the collector under the same mutex.
struct ThreadTraceState {
  std::mutex mutex;
  std::vector<SiteAgg> aggs;  ///< indexed by SiteId, grown on demand
  std::array<SpanRecord, kRingCapacity> ring{};
  std::size_t ring_next = 0;
  std::size_t ring_size = 0;

  void record(const SpanRecord& rec) {
    std::scoped_lock lock(mutex);
    if (rec.site >= aggs.size()) aggs.resize(rec.site + 1);
    SiteAgg& agg = aggs[rec.site];
    ++agg.count;
    agg.total_ns += rec.duration_ns;
    agg.self_ns += rec.self_ns;
    ++agg.buckets[latency_bucket(rec.duration_ns)];
    ring[ring_next] = rec;
    ring_next = (ring_next + 1) % kRingCapacity;
    ring_size = std::min(ring_size + 1, kRingCapacity);
  }
};

struct SiteTable {
  std::mutex mutex;
  std::vector<std::string> names{""};  // id 0 reserved
  std::unordered_map<std::string, SiteId> ids;
};

SiteTable& site_table() {
  static SiteTable* const table = new SiteTable();  // leaked, teardown-safe
  return *table;
}

struct CollectorState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceState>> threads;
};

CollectorState& collector_state() {
  static CollectorState* const state = new CollectorState();  // leaked
  return *state;
}

ThreadTraceState& thread_state() {
  thread_local const std::shared_ptr<ThreadTraceState> state = [] {
    auto s = std::make_shared<ThreadTraceState>();
    CollectorState& c = collector_state();
    std::scoped_lock lock(c.mutex);
    c.threads.push_back(s);  // collector keeps it alive past thread exit
    return s;
  }();
  return *state;
}

thread_local Span* t_current_span = nullptr;
thread_local SpanContext t_ambient{};

double quantile_us(const std::array<std::uint64_t, kLatBuckets>& buckets,
                   std::uint64_t count, double q) noexcept {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t j = 0; j < kLatBuckets; ++j) {
    cum += buckets[j];
    if (cum > 0 && static_cast<double>(cum) >= target) return bucket_upper_us(j);
  }
  return bucket_upper_us(kLatBuckets - 1);
}

}  // namespace

SiteId intern_site(std::string_view name) {
  SiteTable& table = site_table();
  std::scoped_lock lock(table.mutex);
  const auto it = table.ids.find(std::string(name));
  if (it != table.ids.end()) return it->second;
  const auto id = static_cast<SiteId>(table.names.size());
  table.names.emplace_back(name);
  table.ids.emplace(std::string(name), id);
  return id;
}

std::string site_name(SiteId site) {
  SiteTable& table = site_table();
  std::scoped_lock lock(table.mutex);
  return site < table.names.size() ? table.names[site] : std::string();
}

SpanContext current_span_context() noexcept {
  if (t_current_span != nullptr && t_current_span->active_)
    return SpanContext{t_current_span->site_};
  return t_ambient;
}

ScopedSpanContext::ScopedSpanContext(SpanContext ctx) noexcept
    : saved_span_(t_current_span), saved_ambient_(t_ambient), start_ns_(0) {
  if (saved_span_ != nullptr && saved_span_->active_) start_ns_ = now_ns();
  t_current_span = nullptr;
  t_ambient = ctx;
}

ScopedSpanContext::~ScopedSpanContext() {
  // Helping time is charged to the helped tasks' spans: credit it as
  // child time of the suspended span so its SELF time stays honest.
  if (saved_span_ != nullptr && saved_span_->active_ && start_ns_ != 0)
    saved_span_->child_ns_ += now_ns() - start_ns_;
  t_current_span = saved_span_;
  t_ambient = saved_ambient_;
}

Span::Span(SiteId site) noexcept {
  if (!enabled() || site == 0) return;
  site_ = site;
  parent_ = t_current_span;
  parent_site_ = parent_ != nullptr && parent_->active_ ? parent_->site_ : t_ambient.site;
  t_current_span = this;
  start_ns_ = now_ns();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t duration = now_ns() - start_ns_;
  const std::uint64_t self = duration > child_ns_ ? duration - child_ns_ : 0;
  t_current_span = parent_;
  if (parent_ != nullptr && parent_->active_) parent_->child_ns_ += duration;
  thread_state().record(SpanRecord{site_, parent_site_, duration, self});
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* const collector = new TraceCollector();  // leaked
  return *collector;
}

std::vector<SpanStats> TraceCollector::aggregate() const {
  std::vector<SiteAgg> merged;
  {
    CollectorState& c = collector_state();
    std::scoped_lock lock(c.mutex);
    for (const auto& thread : c.threads) {
      std::scoped_lock state_lock(thread->mutex);
      if (thread->aggs.size() > merged.size()) merged.resize(thread->aggs.size());
      for (std::size_t s = 0; s < thread->aggs.size(); ++s) {
        const SiteAgg& a = thread->aggs[s];
        if (a.count == 0) continue;
        SiteAgg& m = merged[s];
        m.count += a.count;
        m.total_ns += a.total_ns;
        m.self_ns += a.self_ns;
        for (std::size_t j = 0; j < kLatBuckets; ++j) m.buckets[j] += a.buckets[j];
      }
    }
  }
  std::vector<SpanStats> stats;
  for (std::size_t s = 0; s < merged.size(); ++s) {
    const SiteAgg& m = merged[s];
    if (m.count == 0) continue;
    SpanStats entry;
    entry.name = site_name(static_cast<SiteId>(s));
    entry.count = m.count;
    entry.total_us = static_cast<double>(m.total_ns) / 1000.0;
    entry.self_us = static_cast<double>(m.self_ns) / 1000.0;
    entry.p50_us = quantile_us(m.buckets, m.count, 0.5);
    entry.p99_us = quantile_us(m.buckets, m.count, 0.99);
    stats.push_back(std::move(entry));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStats& a, const SpanStats& b) { return a.name < b.name; });
  return stats;
}

std::vector<SpanRecord> TraceCollector::recent(std::size_t max) const {
  std::vector<SpanRecord> out;
  CollectorState& c = collector_state();
  std::scoped_lock lock(c.mutex);
  for (const auto& thread : c.threads) {
    std::scoped_lock state_lock(thread->mutex);
    // Newest first within each thread's ring.
    for (std::size_t k = 0; k < thread->ring_size && out.size() < max; ++k) {
      const std::size_t i =
          (thread->ring_next + kRingCapacity - 1 - k) % kRingCapacity;
      out.push_back(thread->ring[i]);
    }
    if (out.size() >= max) break;
  }
  return out;
}

void TraceCollector::publish(MetricsRegistry& registry) const {
  for (const SpanStats& s : aggregate()) {
    const Labels labels = {{"site", s.name}};
    registry.gauge("trace_span_count", labels, "completed spans per call-site")
        .set(static_cast<double>(s.count));
    registry.gauge("trace_span_total_us", labels, "total span time per call-site")
        .set(s.total_us);
    registry
        .gauge("trace_span_self_us", labels,
               "span time net of child spans per call-site")
        .set(s.self_us);
    registry.gauge("trace_span_p50_us", labels, "median span duration (log2-bucket)")
        .set(s.p50_us);
    registry.gauge("trace_span_p99_us", labels, "p99 span duration (log2-bucket)")
        .set(s.p99_us);
  }
}

void TraceCollector::reset() {
  CollectorState& c = collector_state();
  std::scoped_lock lock(c.mutex);
  for (const auto& thread : c.threads) {
    std::scoped_lock state_lock(thread->mutex);
    thread->aggs.clear();
    thread->ring_size = 0;
    thread->ring_next = 0;
  }
}

}  // namespace ssdfail::obs
