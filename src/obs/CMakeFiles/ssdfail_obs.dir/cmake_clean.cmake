file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_obs.dir/exposition.cpp.o"
  "CMakeFiles/ssdfail_obs.dir/exposition.cpp.o.d"
  "CMakeFiles/ssdfail_obs.dir/metrics.cpp.o"
  "CMakeFiles/ssdfail_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ssdfail_obs.dir/snapshotter.cpp.o"
  "CMakeFiles/ssdfail_obs.dir/snapshotter.cpp.o.d"
  "CMakeFiles/ssdfail_obs.dir/trace_span.cpp.o"
  "CMakeFiles/ssdfail_obs.dir/trace_span.cpp.o.d"
  "libssdfail_obs.a"
  "libssdfail_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
