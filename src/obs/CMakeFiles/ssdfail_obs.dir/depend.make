# Empty dependencies file for ssdfail_obs.
# This may be replaced when dependencies are built.
