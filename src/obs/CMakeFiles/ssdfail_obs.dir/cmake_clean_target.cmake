file(REMOVE_RECURSE
  "libssdfail_obs.a"
)
