#pragma once

// Scoped span timers forming a lightweight trace tree.
//
// A Span measures one scoped region against an interned *call-site* name:
//
//   void score_batch(...) {
//     static const obs::SiteId kSite = obs::intern_site("monitor.observe_batch");
//     obs::Span span(kSite);
//     ...
//   }
//
// Spans nest on a per-thread stack: a span's SELF time is its duration
// minus the time spent inside child spans, so aggregated self-times tell
// you where wall-clock actually goes (flame-graph semantics without the
// graph).  Completed spans land in a per-thread buffer — running per-site
// aggregates plus a bounded ring of recent raw spans — and the global
// TraceCollector merges all threads into per-site stats
// (count / total / self / p50 / p99).
//
// Cross-thread propagation: parallel::TaskGroup captures the submitting
// thread's span context (obs::current_span_context()) with each task and
// adopts it on the executing thread (worker or a helper inside
// TaskGroup::wait) via obs::ScopedSpanContext — piggybacking on the same
// pool-context inheritance that keeps nested parallelism in budget.  A
// span opened inside a pool task is therefore attributed to the
// submitting call-site as its parent, whichever thread ran it.  Time a
// waiting span spends *helping* (running stolen tasks inline) is charged
// to those tasks' spans, not to the waiter's self time.
//
// Thread-safety: each thread writes only its own buffer under its own
// mutex (uncontended on the hot path); TraceCollector::aggregate() locks
// each buffer briefly, so exposition while spans close is race-free
// (TSan-clean by test).  When obs::enabled() is false, spans are inert.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ssdfail::obs {

class MetricsRegistry;

/// Interned call-site id; 0 is reserved for "no site" (trace roots).
using SiteId = std::uint32_t;

/// Intern a call-site name (idempotent; mutex-guarded — cache the id in a
/// static at the call site).  Names use the same dotted convention as
/// metrics: "layer.operation" (e.g. "cv.fold", "monitor.score_shard").
[[nodiscard]] SiteId intern_site(std::string_view name);

/// Name of an interned site ("" for 0 / unknown ids).
[[nodiscard]] std::string site_name(SiteId site);

/// The calling thread's innermost active span site (for hand-off to
/// another thread); 0 when no span is active.
struct SpanContext {
  SiteId site = 0;
};
[[nodiscard]] SpanContext current_span_context() noexcept;

/// Adopt a captured context for the current scope: spans opened inside
/// report `ctx.site` as their parent.  Suspends (and on exit resumes) any
/// active span stack of this thread; the suspended span's self time is
/// NOT charged for the adopted scope's duration.
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(SpanContext ctx) noexcept;
  ~ScopedSpanContext();

  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  class Span* saved_span_;
  SpanContext saved_ambient_;
  std::uint64_t start_ns_;
};

/// RAII scoped timer.  Construct with a pre-interned SiteId on hot paths;
/// the const char* overload interns per call (fine for cold paths).
class Span {
 public:
  explicit Span(SiteId site) noexcept;
  explicit Span(const char* name) : Span(intern_site(name)) {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  friend class ScopedSpanContext;
  friend SpanContext current_span_context() noexcept;

  SiteId site_ = 0;
  SiteId parent_site_ = 0;
  Span* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  bool active_ = false;
};

/// One completed span (ring-buffer entry).
struct SpanRecord {
  SiteId site = 0;
  SiteId parent_site = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Aggregated stats for one call-site across all threads.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  double p50_us = 0.0;  ///< log2-bucket upper-edge estimate
  double p99_us = 0.0;
};

/// Merges every thread's span buffers into per-site statistics.
class TraceCollector {
 public:
  /// Process-wide collector (never destroyed; see MetricsRegistry::global).
  static TraceCollector& global();

  /// Per-site stats, name-sorted (deterministic).
  [[nodiscard]] std::vector<SpanStats> aggregate() const;

  /// Most recent completed spans across all threads (triage aid; order is
  /// per-thread recency, not global time order).  At most `max` records.
  [[nodiscard]] std::vector<SpanRecord> recent(std::size_t max = 64) const;

  /// Publish aggregate() into `registry` as gauges:
  ///   trace_span_count{site=...}      trace_span_total_us{site=...}
  ///   trace_span_self_us{site=...}    trace_span_p50_us / trace_span_p99_us
  /// Idempotent (gauges are set, not added) — call before exposition.
  void publish(MetricsRegistry& registry) const;

  /// Drop all recorded spans and aggregates (tests and benches).
  void reset();
};

}  // namespace ssdfail::obs
