#include "obs/snapshotter.hpp"

#include <map>
#include <utility>

namespace ssdfail::obs {

Snapshotter::Snapshotter(MetricsRegistry& registry, std::chrono::milliseconds cadence)
    : registry_(registry), cadence_(cadence) {}

Snapshotter::~Snapshotter() { stop(); }

std::vector<SampleDelta> Snapshotter::diff(const RegistrySnapshot& current) const {
  // Key the previous capture for O(log n) lookup; sample keys are unique
  // (one per (name, labels) child).
  std::map<std::string, const Sample*> previous;
  for (const Sample& s : last_.samples) previous.emplace(s.key(), &s);

  std::vector<SampleDelta> deltas;
  deltas.reserve(current.samples.size());
  for (const Sample& s : current.samples) {
    SampleDelta d;
    d.sample = s;
    const auto it = previous.find(s.key());
    if (s.type == MetricType::kHistogram) {
      d.delta = static_cast<double>(s.count) -
                (it != previous.end() ? static_cast<double>(it->second->count) : 0.0);
    } else {
      d.delta = s.value - (it != previous.end() ? it->second->value : 0.0);
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

std::optional<std::vector<SampleDelta>> Snapshotter::tick(Clock::time_point now,
                                                          bool force) {
  if (!force && last_capture_ && now - *last_capture_ < cadence_) return std::nullopt;
  RegistrySnapshot current = registry_.snapshot();
  std::vector<SampleDelta> deltas = diff(current);
  last_ = std::move(current);
  last_capture_ = now;
  return deltas;
}

void Snapshotter::start(Sink sink) {
  std::scoped_lock lock(bg_mutex_);
  if (bg_thread_.joinable()) return;
  bg_stop_ = false;
  bg_thread_ = std::thread([this, sink = std::move(sink)] {
    std::unique_lock bg_lock(bg_mutex_);
    for (;;) {
      if (bg_cv_.wait_for(bg_lock, cadence_, [this] { return bg_stop_; })) return;
      bg_lock.unlock();
      if (auto deltas = tick(Clock::now(), /*force=*/true)) sink(last_, *deltas);
      bg_lock.lock();
    }
  });
}

void Snapshotter::stop() {
  {
    std::scoped_lock lock(bg_mutex_);
    if (!bg_thread_.joinable()) return;
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  bg_thread_.join();
  bg_thread_ = std::thread();
}

}  // namespace ssdfail::obs
