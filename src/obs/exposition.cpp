#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace ssdfail::obs {
namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// HELP text escaping (0.0.4 format): backslash and newline only.
std::string escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// JSON string escaping (control chars, quote, backslash).
std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip number formatting; integral values print without a
/// fraction so counters read naturally.
std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + escape_label_value(extra_value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void write_prometheus(std::ostream& out, const RegistrySnapshot& snapshot) {
  std::string last_family;
  for (const Sample& s : snapshot.samples) {
    if (s.name != last_family) {
      last_family = s.name;
      out << "# HELP " << s.name << " " << escape_help(s.help.empty() ? s.name : s.help)
          << "\n";
      out << "# TYPE " << s.name << " " << metric_type_name(s.type) << "\n";
    }
    if (s.type == MetricType::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        cum += s.buckets[i];
        const double bound = i < s.bucket_bounds.size()
                                 ? s.bucket_bounds[i]
                                 : std::numeric_limits<double>::infinity();
        out << s.name << "_bucket"
            << label_block(s.labels, "le", format_number(bound)) << " " << cum << "\n";
      }
      out << s.name << "_sum" << label_block(s.labels) << " " << format_number(s.sum)
          << "\n";
      out << s.name << "_count" << label_block(s.labels) << " " << s.count << "\n";
    } else {
      out << s.name << label_block(s.labels) << " " << format_number(s.value) << "\n";
    }
  }
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  write_prometheus(out, snapshot);
  return out.str();
}

std::string to_json(const Sample& sample) {
  std::string out = "{\"name\":\"" + escape_json(sample.name) + "\",\"type\":\"" +
                    std::string(metric_type_name(sample.type)) + "\"";
  if (!sample.labels.empty()) {
    out += ",\"labels\":{";
    for (std::size_t i = 0; i < sample.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += escape_json(sample.labels[i].first);
      out += "\":\"";
      out += escape_json(sample.labels[i].second);
      out += "\"";
    }
    out += "}";
  }
  if (sample.type == MetricType::kHistogram) {
    out += ",\"buckets\":[";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      if (i > 0) out += ",";
      cum += sample.buckets[i];
      const bool inf = i >= sample.bucket_bounds.size();
      out += "{\"le\":";
      out += inf ? "\"+Inf\"" : format_number(sample.bucket_bounds[i]);
      out += ",\"count\":" + std::to_string(cum) + "}";
    }
    out += "],\"sum\":";
    out += format_number(sample.sum);
    out += ",\"count\":";
    out += std::to_string(sample.count);
  } else {
    out += ",\"value\":";
    out += format_number(sample.value);
  }
  out += "}";
  return out;
}

void write_json_lines(std::ostream& out, const RegistrySnapshot& snapshot) {
  for (const Sample& s : snapshot.samples) out << to_json(s) << "\n";
}

std::string to_json_lines(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  write_json_lines(out, snapshot);
  return out.str();
}

}  // namespace ssdfail::obs
