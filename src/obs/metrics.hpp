#pragma once

// Process-wide metrics registry: the collection core of the observability
// layer (docs/OBSERVABILITY.md).
//
// The paper's whole method rests on continuous fleet telemetry; this is
// the same discipline applied to the pipeline itself.  Idiom follows
// netdata's global-statistics pattern: the hot path is a relaxed atomic
// fetch-add on a per-stripe counter slot (no locks, no false sharing —
// each stripe owns a cache line and threads spread across stripes), and a
// reader builds a snapshot by summing the stripes.  Counters are
// monotonic, so a snapshot taken while writers run is always internally
// plausible.
//
// Metrics are interned lazily into labeled families:
//
//   obs::Counter& scored = obs::MetricsRegistry::global().counter(
//       "monitor_records_scored_total", {{"shard", "3"}});
//   scored.inc();            // lock-free; cache the reference, never re-intern
//
// Interning takes the registry mutex once; callers hold the returned
// reference (stable for the registry's lifetime) and never pay it again.
// Naming conventions (enforced by scripts/metrics_lint.py): snake_case,
// counters end in `_total`, histograms carry a unit suffix (`_us`,
// `_bytes`, `_seconds`).
//
// Disabled mode: obs::set_enabled(false) turns every increment into a
// relaxed load + branch (near-no-op), for benchmarking the instrumentation
// itself (bench/bench_obs_overhead.cpp) and for latency-critical replays.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssdfail::obs {

/// Global instrumentation switch (default on).  Disabling stops new
/// observations; already-recorded values remain readable.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Label set as (key, value) pairs; canonicalized (key-sorted) on intern.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Atomic add for doubles (no std::atomic<double>::fetch_add pre-C++20
/// library support guarantee); relaxed CAS loop.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic counter, striped across cache lines.  inc() is a relaxed
/// fetch-add on the calling thread's stripe; value() sums the stripes.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    stripes_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  /// Threads are spread round-robin across stripes (stable per thread).
  static std::size_t stripe_index() noexcept;

  std::array<Stripe, kStripes> stripes_{};
};

/// Last-value gauge (double).  set/add are lock-free.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!enabled()) return;
    detail::atomic_add(value_, delta);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: bucket i counts
/// observations <= bound i; an implicit +Inf bucket catches the rest).
/// observe() is lock-free: one relaxed fetch-add on the bucket plus a CAS
/// add on the running sum.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  /// Record `count` observations of `value` (weighted observe; the
  /// monitor's batched path records one mean latency for N records).
  void observe(double value, std::uint64_t count = 1) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Upper bound of bucket i; the last bucket's bound is +infinity.
  [[nodiscard]] double upper_bound(std::size_t i) const noexcept;
  /// Non-cumulative count in bucket i.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept;
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  std::vector<double> bounds_;  ///< strictly increasing, finite
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1 (+Inf)
  std::atomic<double> sum_{0.0};
};

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view metric_type_name(MetricType type) noexcept;

/// Point-in-time value of one metric (one labeled child).
struct Sample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;                   ///< counter/gauge
  std::vector<double> bucket_bounds;    ///< histogram only (+Inf implied at end)
  std::vector<std::uint64_t> buckets;   ///< non-cumulative, bounds.size()+1 entries
  std::uint64_t count = 0;              ///< histogram observation count
  double sum = 0.0;                     ///< histogram sum of observed values

  /// Canonical `name{k="v",...}` key (exposition- and bench-stable).
  [[nodiscard]] std::string key() const;
};

/// Deterministically ordered (family name asc, label key asc) snapshot.
struct RegistrySnapshot {
  std::vector<Sample> samples;

  /// First sample matching name (+ labels when given); nullptr if absent.
  [[nodiscard]] const Sample* find(std::string_view name) const noexcept;
  [[nodiscard]] const Sample* find(std::string_view name,
                                   const Labels& labels) const noexcept;
};

/// Named metric families with labeled children.  Interning is mutex-
/// guarded and idempotent: the same (name, labels) always returns the
/// same object; re-interning a name with a different type, help, or
/// bucket layout throws std::invalid_argument (duplicate registration).
/// Returned references live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (never destroyed: safe to touch from worker
  /// threads during static teardown).
  static MetricsRegistry& global();

  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, const Labels& labels = {},
               std::string_view help = "");
  Histogram& histogram(std::string_view name, std::span<const double> bounds,
                       const Labels& labels = {}, std::string_view help = "");

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Number of interned (name, labels) children across all families.
  [[nodiscard]] std::size_t metric_count() const;

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> bounds;               ///< histogram families only
    std::map<std::string, Child> children;    ///< keyed by canonical label string
  };

  Family& family_for(std::string_view name, MetricType type, std::string_view help,
                     std::span<const double> bounds);
  Child& child_for(Family& family, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

/// True iff `name` is a valid metric/label identifier:
/// [a-zA-Z_][a-zA-Z0-9_]*.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

/// Equal-width bucket bounds lo+w, lo+2w, ..., hi (hi inclusive as the
/// last finite bound) — the layout the monitor-latency façade uses so a
/// registry histogram reconstructs a stats::Histogram bin-for-bin.
[[nodiscard]] std::vector<double> equal_width_bounds(double lo, double hi,
                                                     std::size_t bins);

}  // namespace ssdfail::obs
