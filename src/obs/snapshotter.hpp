#pragma once

// Periodic registry differ: capture a RegistrySnapshot at a configurable
// cadence and report what moved since the previous capture.
//
// Two drive modes:
//
//  - Manual (deterministic, used by tests and the CLI replay loop): call
//    tick(now) as often as you like; it captures only when `cadence` has
//    elapsed since the last capture (or on force) and returns the deltas.
//
//  - Background: start(sink) spawns a thread that ticks every `cadence`
//    and hands each capture to the sink callback; stop() joins it.  The
//    sink runs on the snapshotter thread.
//
// Counter samples report value + delta since the previous capture; gauge
// samples report value + delta; histogram samples report count/sum deltas
// through their Sample (the delta field carries the count delta).

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ssdfail::obs {

/// One metric's movement between two captures.
struct SampleDelta {
  Sample sample;       ///< current values
  double delta = 0.0;  ///< value change (histogram: observation-count change)
};

class Snapshotter {
 public:
  using Clock = std::chrono::steady_clock;
  using Sink = std::function<void(const RegistrySnapshot&,
                                  const std::vector<SampleDelta>&)>;

  Snapshotter(MetricsRegistry& registry, std::chrono::milliseconds cadence);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Capture if `cadence` elapsed since the last capture (always on
  /// `force` or first call).  Returns deltas vs the previous capture, or
  /// nullopt when it is not yet time.  New samples delta from zero.
  std::optional<std::vector<SampleDelta>> tick(Clock::time_point now = Clock::now(),
                                               bool force = false);

  /// Most recent capture (empty before the first tick).
  [[nodiscard]] const RegistrySnapshot& last() const { return last_; }

  /// Spawn the background thread (no-op if already running).
  void start(Sink sink);
  /// Stop and join the background thread (safe if not running).
  void stop();

 private:
  std::vector<SampleDelta> diff(const RegistrySnapshot& current) const;

  MetricsRegistry& registry_;
  std::chrono::milliseconds cadence_;
  RegistrySnapshot last_;
  std::optional<Clock::time_point> last_capture_;

  std::mutex bg_mutex_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::thread bg_thread_;
};

}  // namespace ssdfail::obs
