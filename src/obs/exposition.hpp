#pragma once

// Exposition formats for a RegistrySnapshot.
//
// Two wire formats, both deterministic (family name asc, labels asc):
//
//  - Prometheus text format (version 0.0.4): `# HELP` / `# TYPE` headers
//    per family, `name{label="v"} value` samples, histograms expanded to
//    cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//    Validated by scripts/metrics_lint.py in CI.
//
//  - JSON lines: one self-contained JSON object per metric per line —
//    grep-able, appendable (the Snapshotter's streaming format), and
//    trivially consumed by the quick-bench harness:
//      {"name":"monitor_records_scored_total","type":"counter",
//       "labels":{"shard":"3"},"value":12345}
//    Histograms carry "buckets":[{"le":50,"count":n},...] (cumulative,
//    final le is "+Inf"), "sum" and "count".

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace ssdfail::obs {

void write_prometheus(std::ostream& out, const RegistrySnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snapshot);

void write_json_lines(std::ostream& out, const RegistrySnapshot& snapshot);
[[nodiscard]] std::string to_json_lines(const RegistrySnapshot& snapshot);

/// One JSON object (single line, no trailing newline) for one sample —
/// the Snapshotter emits these with an extra delta field.
[[nodiscard]] std::string to_json(const Sample& sample);

}  // namespace ssdfail::obs
