#include "io/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>

namespace ssdfail::io {

std::string CsvWriter::escape(std::string_view field, char sep) {
  const bool needs_quote = field.find_first_of("\"\r\n") != std::string_view::npos ||
                           field.find(sep) != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << sep_;
    out_ << escape(fields[i], sep_);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    fields.emplace_back(buf, ptr);
  }
  write_row(fields);
}

std::vector<std::string> parse_csv_line(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in, char sep) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line, sep));
  }
  return rows;
}

}  // namespace ssdfail::io
