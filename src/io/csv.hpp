#pragma once

// Small, dependency-free CSV reading and writing (RFC-4180 quoting).
// Used to export traces and experiment results for external plotting.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ssdfail::io {

/// Streaming CSV writer.  Fields containing separators, quotes, or
/// newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with full round-trip precision.
  void write_row_numeric(const std::vector<double>& values);

  static std::string escape(std::string_view field, char sep);

 private:
  std::ostream& out_;
  char sep_;
};

/// Parse one CSV line into fields (handles quoted fields and embedded
/// separators; embedded newlines are not supported by line-based parsing).
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line, char sep = ',');

/// Read an entire CSV stream into rows of fields.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(std::istream& in, char sep = ',');

}  // namespace ssdfail::io
