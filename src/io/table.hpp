#pragma once

// Fixed-width text table rendering.  Every bench harness prints its
// reproduced table/figure series through this, so output stays uniform and
// greppable (rows are also emitted as CSV on request).

#include <iosfwd>
#include <string>
#include <vector>

namespace ssdfail::io {

/// A simple column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format a double with `digits` significant decimal places.
  [[nodiscard]] static std::string num(double v, int digits = 4);
  /// Format as a percentage with `digits` decimals (value in [0,1] -> "xx.x").
  [[nodiscard]] static std::string pct(double v, int digits = 1);

  void print(std::ostream& out) const;
  void print_csv(std::ostream& out) const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssdfail::io
