file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_io.dir/csv.cpp.o"
  "CMakeFiles/ssdfail_io.dir/csv.cpp.o.d"
  "CMakeFiles/ssdfail_io.dir/table.cpp.o"
  "CMakeFiles/ssdfail_io.dir/table.cpp.o.d"
  "libssdfail_io.a"
  "libssdfail_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
