file(REMOVE_RECURSE
  "libssdfail_io.a"
)
