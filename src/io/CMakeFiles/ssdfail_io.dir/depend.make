# Empty dependencies file for ssdfail_io.
# This may be replaced when dependencies are built.
