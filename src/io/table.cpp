#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "io/csv.hpp"

namespace ssdfail::io {

std::string TextTable::num(double v, int digits) {
  if (std::isnan(v)) return "--";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TextTable::pct(double v, int digits) {
  if (std::isnan(v)) return "--";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v * 100.0);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell;
      if (i + 1 < widths.size())
        out << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };

  out << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  out << '\n';
}

void TextTable::print_csv(std::ostream& out) const {
  CsvWriter writer(out);
  if (!header_.empty()) writer.write_row(header_);
  for (const auto& r : rows_) writer.write_row(r);
}

}  // namespace ssdfail::io
