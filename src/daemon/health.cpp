#include "daemon/health.hpp"

namespace ssdfail::daemon {

std::string_view health_state_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kRamping: return "ramping";
    case HealthState::kAlert: return "alert";
    case HealthState::kSwapped: return "swapped";
  }
  return "unknown";
}

HealthTracker::HealthTracker(HealthConfig config, obs::MetricsRegistry* registry)
    : config_(config), registry_(registry) {
  if (registry_ == nullptr) return;
  for (std::size_t s = 0; s < kNumHealthStates; ++s) {
    state_gauges_[s] = &registry_->gauge(
        "daemon_drive_health",
        {{"state", std::string(health_state_name(static_cast<HealthState>(s)))}},
        "Tracked drives currently in each health state");
  }
  // Transition edges are interned on demand (most never fire); see
  // transition().
}

void HealthTracker::transition(DriveHealth& drive, HealthState to) {
  const HealthState from = drive.state;
  if (from == to) return;
  --counts_[static_cast<std::size_t>(from)];
  ++counts_[static_cast<std::size_t>(to)];
  drive.state = to;
  drive.ramp_streak = 0;
  drive.alert_streak = 0;
  drive.quiet_streak = 0;
  if (registry_ != nullptr) {
    // Shards share one gauge family, so mirror with deltas (atomic add),
    // never set().
    state_gauges_[static_cast<std::size_t>(from)]->add(-1.0);
    state_gauges_[static_cast<std::size_t>(to)]->add(1.0);
    obs::Counter*& edge =
        transition_counters_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
    if (edge == nullptr) {
      edge = &registry_->counter(
          "daemon_health_transitions_total",
          {{"from", std::string(health_state_name(from))},
           {"to", std::string(health_state_name(to))}},
          "Health state machine transitions by edge");
    }
    edge->inc();
  }
}

HealthState HealthTracker::observe(std::uint64_t uid, double score, bool suspect,
                                   bool dead) {
  auto [it, inserted] = drives_.try_emplace(uid);
  DriveHealth& drive = it->second;
  if (inserted) {
    ++counts_[static_cast<std::size_t>(HealthState::kHealthy)];
    if (registry_ != nullptr)
      state_gauges_[static_cast<std::size_t>(HealthState::kHealthy)]->add(1.0);
  }
  if (drive.state == HealthState::kSwapped) return drive.state;
  if (dead) {
    transition(drive, HealthState::kSwapped);
    return drive.state;
  }

  const bool alert_strike = score >= config_.alert_threshold;
  // A sanitizer violation is evidence of trouble even when the score is
  // calm: count it as a ramp-tier strike.
  const bool ramp_strike = alert_strike || suspect || score >= config_.ramp_threshold;

  if (alert_strike) {
    ++drive.alert_streak;
  } else {
    drive.alert_streak = 0;
  }
  if (ramp_strike) {
    ++drive.ramp_streak;
    drive.quiet_streak = 0;
  } else {
    drive.ramp_streak = 0;
    ++drive.quiet_streak;
  }

  switch (drive.state) {
    case HealthState::kHealthy:
      if (drive.alert_streak >= config_.alert_days) {
        transition(drive, HealthState::kAlert);
      } else if (drive.ramp_streak >= config_.ramp_days) {
        transition(drive, HealthState::kRamping);
      }
      break;
    case HealthState::kRamping:
      if (drive.alert_streak >= config_.alert_days) {
        transition(drive, HealthState::kAlert);
      } else if (drive.quiet_streak >= config_.cooloff_days) {
        transition(drive, HealthState::kHealthy);
      }
      break;
    case HealthState::kAlert:
      if (drive.quiet_streak >= config_.cooloff_days) {
        transition(drive, HealthState::kRamping);
      }
      break;
    case HealthState::kSwapped:
      break;  // unreachable: handled above
  }
  return drive.state;
}

void HealthTracker::retire(std::uint64_t uid) {
  auto [it, inserted] = drives_.try_emplace(uid);
  if (inserted) {
    ++counts_[static_cast<std::size_t>(HealthState::kHealthy)];
    if (registry_ != nullptr)
      state_gauges_[static_cast<std::size_t>(HealthState::kHealthy)]->add(1.0);
  }
  transition(it->second, HealthState::kSwapped);
}

std::size_t HealthTracker::reset_strikes() {
  std::size_t cleared = 0;
  for (auto& [uid, drive] : drives_) {
    (void)uid;
    if (drive.state == HealthState::kSwapped) continue;  // terminal, no streaks matter
    if (drive.ramp_streak == 0 && drive.alert_streak == 0 && drive.quiet_streak == 0)
      continue;
    drive.ramp_streak = 0;
    drive.alert_streak = 0;
    drive.quiet_streak = 0;
    ++cleared;
  }
  return cleared;
}

HealthState HealthTracker::state(std::uint64_t uid) const noexcept {
  const auto it = drives_.find(uid);
  return it == drives_.end() ? HealthState::kHealthy : it->second.state;
}

std::uint64_t HealthTracker::digest() const noexcept {
  // Order-independent: hash each drive's tuple with FNV-1a, combine by sum
  // so unordered_map iteration order cannot leak into the digest.
  std::uint64_t total = 0;
  for (const auto& [uid, drive] : drives_) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
      }
    };
    mix(uid);
    mix(static_cast<std::uint64_t>(drive.state));
    mix((static_cast<std::uint64_t>(drive.ramp_streak) << 32) | drive.alert_streak);
    mix(drive.quiet_streak);
    total += h;
  }
  return total;
}

}  // namespace ssdfail::daemon
