#include "daemon/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "store/crc32.hpp"

namespace ssdfail::daemon {

namespace {

void put_u16(std::vector<char>& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::vector<char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// Scan an image's valid prefix, optionally delivering accepted segments.
/// The single source of truth for what "durable" means: the writer's
/// resume path and the recovery replay both call this, so they can never
/// disagree about where the log ends.
WalReplayStats scan_image(std::span<const char> image,
                          const std::function<void(const WalSegment&)>& on_segment) {
  WalReplayStats stats;
  if (image.size() < kWalFileHeaderSize) {
    stats.truncated_bytes = image.size();
    return stats;
  }
  if (get_u32(image.data()) != kWalMagic || get_u32(image.data() + 4) != kWalVersion ||
      get_u32(image.data() + 12) != 0) {
    stats.truncated_bytes = image.size();
    return stats;
  }
  stats.header_valid = true;
  std::size_t at = kWalFileHeaderSize;

  while (at + kWalSegmentHeaderSize <= image.size()) {
    const char* h = image.data() + at;
    if (get_u32(h) != kSegmentMarker) break;
    const std::uint64_t seq = get_u64(h + 4);
    const std::uint32_t type_raw = get_u32(h + 12);
    const std::uint32_t count = get_u32(h + 16);
    const std::uint32_t len = get_u32(h + 20);
    const std::uint32_t crc_stored = get_u32(h + 24);
    if (seq == 0 || len > kWalMaxPayload) break;
    if (type_raw > static_cast<std::uint32_t>(SegmentType::kRetires)) break;
    const auto type = static_cast<SegmentType>(type_raw);
    const std::size_t unit = type == SegmentType::kRecords ? kWalRecordSize : 8;
    if (static_cast<std::size_t>(len) != static_cast<std::size_t>(count) * unit) break;
    if (at + kWalSegmentHeaderSize + len > image.size()) break;  // torn tail
    std::uint32_t crc = store::crc32(0, image.subspan(at + 4, 20));
    crc = store::crc32(crc, image.subspan(at + kWalSegmentHeaderSize, len));
    if (crc != crc_stored) break;

    if (seq <= stats.last_seq) {
      // Redelivered segment (producer retried after an unacknowledged
      // append): structurally fine, semantically already applied.
      ++stats.duplicates_skipped;
    } else {
      stats.last_seq = seq;
      ++stats.segments_replayed;
      if (on_segment) {
        WalSegment seg;
        seg.seq = seq;
        seg.type = type;
        const char* payload = image.data() + at + kWalSegmentHeaderSize;
        if (type == SegmentType::kRecords) {
          seg.records.reserve(count);
          for (std::uint32_t r = 0; r < count; ++r)
            seg.records.push_back(parse_record_payload(payload + r * kWalRecordSize));
        } else {
          seg.retired_uids.reserve(count);
          for (std::uint32_t r = 0; r < count; ++r)
            seg.retired_uids.push_back(get_u64(payload + r * 8));
        }
        on_segment(seg);
      }
      if (type == SegmentType::kRecords)
        stats.records_replayed += count;
      else
        stats.retires_replayed += count;
    }
    at += kWalSegmentHeaderSize + len;
  }
  stats.durable_bytes = at;
  stats.truncated_bytes = image.size() - at;
  return stats;
}

std::vector<char> read_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  exists = static_cast<bool>(in);
  std::vector<char> bytes;
  if (!exists) return bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  if (size > 0) {
    bytes.resize(static_cast<std::size_t>(size));
    in.read(bytes.data(), size);
    if (!in) throw std::runtime_error("wal: cannot read " + path);
  }
  return bytes;
}

void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write failed for " + path + ": " +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void WalReplayStats::merge(const WalReplayStats& other) noexcept {
  segments_replayed += other.segments_replayed;
  records_replayed += other.records_replayed;
  retires_replayed += other.retires_replayed;
  duplicates_skipped += other.duplicates_skipped;
  truncated_bytes += other.truncated_bytes;
  durable_bytes += other.durable_bytes;
  last_seq = std::max(last_seq, other.last_seq);
  header_valid = header_valid || other.header_valid;
}

void append_record_payload(std::vector<char>& out, const core::FleetObservation& obs) {
  out.push_back(static_cast<char>(obs.drive_model));
  out.push_back(static_cast<char>((obs.record.read_only ? 1 : 0) |
                                  (obs.record.dead ? 2 : 0)));
  put_u16(out, obs.record.factory_bad_blocks);
  put_u32(out, obs.drive_index);
  put_u32(out, static_cast<std::uint32_t>(obs.deploy_day));
  put_u32(out, static_cast<std::uint32_t>(obs.record.day));
  put_u32(out, obs.record.reads);
  put_u32(out, obs.record.writes);
  put_u32(out, obs.record.erases);
  put_u32(out, obs.record.pe_cycles);
  put_u32(out, obs.record.bad_blocks);
  for (std::uint32_t e : obs.record.errors) put_u32(out, e);
  for (const trace::RecordCounterField& f : trace::kExtCounterFields)
    put_u32(out, obs.record.*f.field);
}

core::FleetObservation parse_record_payload(const char* p) {
  core::FleetObservation obs;
  obs.drive_model = static_cast<trace::DriveModel>(static_cast<unsigned char>(p[0]));
  const auto flags = static_cast<unsigned char>(p[1]);
  obs.record.read_only = (flags & 1) != 0;
  obs.record.dead = (flags & 2) != 0;
  obs.record.factory_bad_blocks = get_u16(p + 2);
  obs.drive_index = get_u32(p + 4);
  obs.deploy_day = static_cast<std::int32_t>(get_u32(p + 8));
  obs.record.day = static_cast<std::int32_t>(get_u32(p + 12));
  obs.record.reads = get_u32(p + 16);
  obs.record.writes = get_u32(p + 20);
  obs.record.erases = get_u32(p + 24);
  obs.record.pe_cycles = get_u32(p + 28);
  obs.record.bad_blocks = get_u32(p + 32);
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    obs.record.errors[e] = get_u32(p + 36 + e * 4);
  for (std::size_t x = 0; x < trace::kNumExtCounterFields; ++x)
    obs.record.*trace::kExtCounterFields[x].field =
        get_u32(p + 36 + trace::kNumErrorTypes * 4 + x * 4);
  return obs;
}

WalWriter::WalWriter(std::string path, std::uint32_t shard, FsyncPolicy fsync,
                     std::uint64_t first_seq)
    : path_(std::move(path)), fsync_(fsync) {
  bool exists = false;
  const std::vector<char> image = read_file(path_, exists);
  WalReplayStats stats;
  if (exists) stats = scan_image(image, nullptr);

  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0)
    throw std::runtime_error("wal: cannot open " + path_ + ": " + std::strerror(errno));

  next_seq_ = std::max<std::uint64_t>(first_seq, 1);
  if (!exists || !stats.header_valid) {
    // Fresh (or alien) file: write the header from scratch.
    if (::ftruncate(fd_, 0) != 0)
      throw std::runtime_error("wal: cannot truncate " + path_);
    std::vector<char> header;
    put_u32(header, kWalMagic);
    put_u32(header, kWalVersion);
    put_u32(header, shard);
    put_u32(header, 0);  // reserved, must be zero
    write_all(fd_, header.data(), header.size(), path_);
    bytes_ = header.size();
  } else {
    // Resume: drop the torn/corrupt tail so the next append starts at a
    // clean boundary, and continue the seq chain past the durable log.
    if (::ftruncate(fd_, static_cast<off_t>(stats.durable_bytes)) != 0)
      throw std::runtime_error("wal: cannot truncate " + path_);
    if (::lseek(fd_, 0, SEEK_END) < 0)
      throw std::runtime_error("wal: cannot seek " + path_);
    next_seq_ = std::max(next_seq_, stats.last_seq + 1);
    bytes_ = stats.durable_bytes;
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t WalWriter::append_segment(SegmentType type, std::uint32_t count,
                                        std::span<const char> payload) {
  const std::uint64_t seq = next_seq_++;
  std::vector<char> frame;
  frame.reserve(kWalSegmentHeaderSize + payload.size());
  put_u32(frame, kSegmentMarker);
  put_u64(frame, seq);
  put_u32(frame, static_cast<std::uint32_t>(type));
  put_u32(frame, count);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = store::crc32(0, std::span<const char>(frame).subspan(4, 20));
  crc = store::crc32(crc, payload);
  put_u32(frame, crc);
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_all(fd_, frame.data(), frame.size(), path_);
  if (fsync_ == FsyncPolicy::kEverySegment) sync();
  ++segments_;
  bytes_ += frame.size();
  return seq;
}

std::uint64_t WalWriter::append(std::span<const core::FleetObservation> batch) {
  std::vector<char> payload;
  payload.reserve(batch.size() * kWalRecordSize);
  for (const core::FleetObservation& obs : batch) append_record_payload(payload, obs);
  return append_segment(SegmentType::kRecords,
                        static_cast<std::uint32_t>(batch.size()), payload);
}

std::uint64_t WalWriter::append_retires(std::span<const std::uint64_t> uids) {
  std::vector<char> payload;
  payload.reserve(uids.size() * 8);
  for (std::uint64_t uid : uids) put_u64(payload, uid);
  return append_segment(SegmentType::kRetires, static_cast<std::uint32_t>(uids.size()),
                        payload);
}

void WalWriter::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0)
    throw std::runtime_error("wal: fsync failed for " + path_);
}

void WalWriter::seal(const std::string& sealed_path) {
  if (fd_ < 0) throw std::runtime_error("wal: seal on a closed writer");
  sync();
  ::close(fd_);
  fd_ = -1;
  if (std::rename(path_.c_str(), sealed_path.c_str()) != 0)
    throw std::runtime_error("wal: cannot seal " + path_ + " -> " + sealed_path +
                             ": " + std::strerror(errno));
}

WalReplayStats replay_wal(const std::string& path,
                          const std::function<void(const WalSegment&)>& on_segment) {
  bool exists = false;
  const std::vector<char> image = read_file(path, exists);
  if (!exists) return {};
  return scan_image(image, on_segment);
}

WalReplayStats replay_wal_image(std::span<const char> image,
                                const std::function<void(const WalSegment&)>& on_segment) {
  return scan_image(image, on_segment);
}

std::string wal_path(const std::string& dir, std::uint32_t shard) {
  return dir + "/wal-" + std::to_string(shard) + ".swal";
}

std::string sealed_wal_path(const std::string& dir, std::uint32_t shard,
                            std::uint64_t last_seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%u-%016llu.sealed.swal", shard,
                static_cast<unsigned long long>(last_seq));
  return dir + "/" + name;
}

std::vector<std::string> list_sealed_wals(const std::string& dir,
                                          std::optional<std::uint32_t> shard) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kSuffix = ".sealed.swal";
    if (name.size() <= std::strlen(kSuffix) + 4 ||
        name.compare(name.size() - std::strlen(kSuffix), std::string::npos,
                     kSuffix) != 0 ||
        name.rfind("wal-", 0) != 0)
      continue;
    if (shard) {
      const std::string prefix = "wal-" + std::to_string(*shard) + "-";
      if (name.rfind(prefix, 0) != 0) continue;
    }
    out.push_back(entry.path().string());
  }
  // Zero-padded seq in the name makes lexicographic order replay order.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ssdfail::daemon
