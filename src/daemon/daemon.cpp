#include "daemon/daemon.hpp"

#include <atomic>

#include "ml/matrix.hpp"
#include "ml/model_zoo.hpp"
#include "stats/rng.hpp"

namespace ssdfail::daemon {
namespace {

/// Instance label so concurrent daemons (tests, benches) sharing a
/// registry never clobber each other's gauges — the FleetMonitor idiom.
std::string next_daemon_label() {
  static std::atomic<std::uint64_t> next{0};
  return std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-independent digest of one feature cursor (summed by the caller).
std::uint64_t cursor_digest(std::uint64_t uid, const core::DriveFeatureCursor& cursor) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv_mix(h, uid);
  h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(cursor.last_day())));
  h = fnv_mix(h, cursor.days_observed());
  const core::FeatureExtractor::State& st = cursor.state();
  h = fnv_mix(h, st.cum.reads);
  h = fnv_mix(h, st.cum.writes);
  h = fnv_mix(h, st.cum.erases);
  for (std::uint64_t e : st.cum.errors) h = fnv_mix(h, e);
  h = fnv_mix(h, st.cum_bad_blocks);
  h = fnv_mix(h, (static_cast<std::uint64_t>(st.prev_bad_blocks) << 32) |
                     st.new_bad_blocks_today);
  return h;
}

}  // namespace

TelemetryDaemon::Shard::Shard(const DaemonConfig& config,
                              obs::MetricsRegistry& registry, std::uint32_t idx)
    : index(idx),
      ring(config.ring_capacity),
      sanitizer(robustness::SanitizerConfig{config.dead_letter_capacity, &registry}),
      health(config.health, &registry) {}

TelemetryDaemon::TelemetryDaemon(std::shared_ptr<const ml::Classifier> model,
                                 DaemonConfig config)
    : config_(std::move(config)),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &obs::MetricsRegistry::global()) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (model != nullptr) model_ = ml::make_serving_model(std::move(model));

  const std::string instance = next_daemon_label();
  obs::MetricsRegistry& reg = *registry_;
  shed_metric_ = &reg.counter("daemon_records_shed_total", {},
                              "Records dropped by ring backpressure");
  scored_metric_ = &reg.counter("daemon_records_scored_total", {},
                                "Records that reached the model");
  alerts_metric_ = &reg.counter("daemon_alerts_total", {},
                                "Scores at or above the alert threshold");
  segments_metric_ = &reg.counter("daemon_wal_segments_appended_total", {},
                                  "WAL segments appended across shards");
  wal_bytes_metric_ = &reg.counter("daemon_wal_appended_bytes_total", {},
                                   "WAL bytes appended across shards");
  wal_errors_metric_ = &reg.counter("daemon_wal_errors_total", {},
                                    "WAL open/append/fsync failures");
  stalls_metric_ = &reg.counter("daemon_watchdog_stalls_total", {},
                                "Appender stall episodes detected by the watchdog");
  strike_resets_metric_ =
      &reg.counter("daemon_strike_resets_total", {},
                   "Per-drive strike streaks cleared by model promotion");
  recovered_segments_metric_ = &reg.counter("daemon_recovery_segments_total", {},
                                            "WAL segments replayed at startup");
  recovered_records_metric_ = &reg.counter("daemon_recovery_records_total", {},
                                           "Records replayed from the WAL at startup");
  degraded_metric_ = &reg.gauge("daemon_degraded", {{"daemon", instance}},
                                "1 while serving without a model");
  wal_degraded_metric_ = &reg.gauge("daemon_wal_degraded", {{"daemon", instance}},
                                    "1 while serving without a usable WAL");
  degraded_metric_->set(model_ == nullptr ? 1.0 : 0.0);

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(config_, reg, static_cast<std::uint32_t>(s)));
    Shard& shard = *shards_.back();
    shard.ingested_metric =
        &reg.counter("daemon_records_ingested_total",
                     {{"shard", std::to_string(s)}}, "Records accepted into a ring");
    shard.depth_metric = &reg.gauge(
        "daemon_ring_depth", {{"daemon", instance}, {"shard", std::to_string(s)}},
        "Approximate records waiting in a shard ring");
  }
}

TelemetryDaemon::~TelemetryDaemon() { stop(); }

std::size_t TelemetryDaemon::shard_index(std::uint64_t uid) const noexcept {
  // Same routing as FleetMonitor: hash, then modulo, so one drive's whole
  // stream stays on one shard (the sanitizer/cursor day-order invariant).
  return static_cast<std::size_t>(stats::hash_keys({uid}) % shards_.size());
}

std::shared_ptr<const ml::Classifier> TelemetryDaemon::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void TelemetryDaemon::set_model(std::shared_ptr<const ml::Classifier> model) {
  std::shared_ptr<const ml::Classifier> serving =
      model != nullptr ? ml::make_serving_model(std::move(model)) : nullptr;
  const bool promoted = serving != nullptr;
  {
    std::scoped_lock lock(model_mutex_);
    model_ = std::move(serving);
  }
  degraded_metric_->set(current_model() == nullptr ? 1.0 : 0.0);
  if (!promoted) return;
  // Strikes accumulated under the old model's score scale must not carry
  // into post-promotion escalation.  Each shard's appender applies the
  // reset at its next iteration; when quiesced, apply inline (the same
  // single-threaded access retire() uses).
  const bool live = running_.load() && !stopping_.load();
  for (auto& shard : shards_) {
    if (live) {
      shard->strike_reset_pending.store(true, std::memory_order_release);
    } else {
      shard->strike_reset_pending.store(false, std::memory_order_relaxed);
      strike_resets_metric_->inc(shard->health.reset_strikes());
    }
  }
}

void TelemetryDaemon::apply_pending_strike_reset(Shard& shard) {
  if (shard.strike_reset_pending.exchange(false, std::memory_order_acq_rel))
    strike_resets_metric_->inc(shard.health.reset_strikes());
}

void TelemetryDaemon::mark_wal_degraded(Shard& shard) {
  shard.wal.reset();
  wal_errors_.fetch_add(1, std::memory_order_relaxed);
  wal_errors_metric_->inc();
  wal_degraded_.store(true, std::memory_order_relaxed);
  wal_degraded_metric_->set(1.0);
}

void TelemetryDaemon::recover_shard(Shard& shard) {
  const std::string path = wal_path(config_.wal_dir, shard.index);
  const auto on_segment = [&](const WalSegment& segment) {
    if (segment.type == SegmentType::kRecords) {
      process_records(shard, segment.records);
    } else {
      process_retires(shard, segment.retired_uids);
    }
  };
  // Sealed (rotated, not yet compacted) files carry the log's oldest
  // entries; replay them in seq order before the active file so recovery
  // sees the exact append order.
  WalReplayStats stats;
  std::uint64_t last_seq = 0;
  for (const std::string& sealed : list_sealed_wals(config_.wal_dir, shard.index)) {
    WalReplayStats s = replay_wal(sealed, on_segment);
    stats.merge(s);
    last_seq = std::max(last_seq, s.last_seq);
  }
  stats.merge(replay_wal(path, on_segment));
  recovery_.merge(stats);
  recovered_segments_metric_->inc(stats.segments_replayed);
  recovered_records_metric_->inc(stats.records_replayed);
  try {
    shard.wal = std::make_unique<WalWriter>(path, shard.index, config_.fsync,
                                            std::max(last_seq, stats.last_seq) + 1);
  } catch (const std::exception&) {
    mark_wal_degraded(shard);
  }
}

void TelemetryDaemon::maybe_rotate_wal(Shard& shard) {
  if (config_.wal_rotate_bytes == 0 || shard.wal == nullptr) return;
  if (shard.wal->bytes_written() < config_.wal_rotate_bytes) return;
  if (shard.wal->segments_written() == 0) return;  // nothing to seal
  try {
    const std::uint64_t next_seq = shard.wal->next_seq();
    shard.wal->seal(
        sealed_wal_path(config_.wal_dir, shard.index, next_seq - 1));
    shard.wal = std::make_unique<WalWriter>(wal_path(config_.wal_dir, shard.index),
                                            shard.index, config_.fsync, next_seq);
  } catch (const std::exception&) {
    // A failed seal/reopen must not lose durability silently.
    shard.wal.reset();
    mark_wal_degraded(shard);
  }
}

void TelemetryDaemon::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  if (config_.wal_dir.empty()) {
    wal_degraded_.store(true, std::memory_order_relaxed);
    wal_degraded_metric_->set(1.0);
  } else {
    recovering_.store(true, std::memory_order_relaxed);
    for (auto& shard : shards_) recover_shard(*shard);
    recovering_.store(false, std::memory_order_relaxed);
  }
  for (auto& shard : shards_)
    shard->appender = std::thread(&TelemetryDaemon::appender_main, this,
                                  std::ref(*shard));
  watchdog_ = std::thread(&TelemetryDaemon::watchdog_main, this);
}

void TelemetryDaemon::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  for (auto& shard : shards_)
    if (shard->appender.joinable()) shard->appender.join();
  if (watchdog_.joinable()) watchdog_.join();
  // A reset requested after an appender's final iteration lands here.
  for (auto& shard : shards_) apply_pending_strike_reset(*shard);
  for (auto& shard : shards_) {
    if (shard->wal == nullptr) continue;
    try {
      shard->wal->sync();
    } catch (const std::exception&) {
      mark_wal_degraded(*shard);
    }
  }
  running_.store(false);
}

PushResult TelemetryDaemon::push(const core::FleetObservation& obs) {
  if (!running_.load(std::memory_order_relaxed) ||
      stopping_.load(std::memory_order_relaxed)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kRejected;
  }
  Shard& shard = *shards_[shard_index(obs.uid())];
  const PushResult result =
      shard.ring.push(obs, config_.backpressure, config_.block_timeout);
  if (result == PushResult::kAccepted) {
    ingested_.fetch_add(1, std::memory_order_relaxed);
    shard.ingested_metric->inc();
  } else {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->inc();
  }
  return result;
}

void TelemetryDaemon::retire(trace::DriveModel drive_model, std::uint32_t drive_index) {
  const std::uint64_t uid =
      (static_cast<std::uint64_t>(drive_model) << 32) | drive_index;
  Shard& shard = *shards_[shard_index(uid)];
  if (!running_.load() || stopping_.load()) {
    // Quiesced: apply inline (and WAL it if a writer is open) so tests can
    // exercise retire without threads.
    std::vector<std::uint64_t> uids{uid};
    wal_append(shard, {}, uids);
    process_retires(shard, uids);
    return;
  }
  std::scoped_lock lock(shard.retire_mutex);
  shard.pending_retires.push_back(uid);
}

void TelemetryDaemon::wal_append(Shard& shard,
                                 std::span<const core::FleetObservation> batch,
                                 std::span<const std::uint64_t> retires) {
  if (shard.wal == nullptr) return;
  try {
    const std::uint64_t before = shard.wal->bytes_written();
    if (!batch.empty()) {
      shard.wal->append(batch);
      segments_.fetch_add(1, std::memory_order_relaxed);
      segments_metric_->inc();
    }
    if (!retires.empty()) {
      shard.wal->append_retires(retires);
      segments_.fetch_add(1, std::memory_order_relaxed);
      segments_metric_->inc();
    }
    const std::uint64_t delta = shard.wal->bytes_written() - before;
    wal_bytes_.fetch_add(delta, std::memory_order_relaxed);
    wal_bytes_metric_->inc(delta);
    maybe_rotate_wal(shard);
  } catch (const std::exception&) {
    // Durability lost, service continues: WAL-degraded mode.
    mark_wal_degraded(shard);
  }
}

void TelemetryDaemon::process_records(Shard& shard,
                                      std::span<const core::FleetObservation> batch) {
  if (batch.empty()) return;
  const std::shared_ptr<const ml::Classifier> model = current_model();
  BatchObserver* const observer =
      recovering_.load(std::memory_order_relaxed) ? nullptr : config_.batch_observer;

  struct Prepared {
    std::uint64_t uid;
    std::int32_t day;
    bool suspect;
    bool dead;
  };
  ml::Matrix rows;
  std::vector<float> row(core::FeatureExtractor::count());
  std::vector<Prepared> prepared;
  prepared.reserve(batch.size());
  // Sanitized records and assessments, retained only when a tap listens.
  std::vector<trace::DailyRecord> clean_records;
  std::vector<DriveAssessment> assessments;
  if (observer != nullptr) {
    clean_records.reserve(batch.size());
    assessments.reserve(batch.size());
  }

  for (const core::FleetObservation& obs : batch) {
    const std::uint64_t uid = obs.uid();
    const robustness::SanitizeResult clean =
        shard.sanitizer.sanitize(uid, obs.deploy_day, obs.record);
    switch (clean.action) {
      case robustness::SanitizeAction::kQuarantined:
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        // Irreparable telemetry is itself a symptom: a ramp-tier strike,
        // but never a swap (a corrupt record's dead flag is not trusted).
        shard.health.observe(uid, 0.0, /*suspect=*/true, /*dead=*/false);
        continue;
      case robustness::SanitizeAction::kDuplicateDropped:
        duplicates_.fetch_add(1, std::memory_order_relaxed);
        continue;
      case robustness::SanitizeAction::kClean:
      case robustness::SanitizeAction::kRepaired:
        break;
    }
    auto [it, inserted] =
        shard.cursors.try_emplace(uid, obs.drive_model, obs.deploy_day);
    // Sanitizer guarantees strictly increasing days per uid, so this
    // cannot throw.
    it->second.advance_and_extract(clean.record, row);
    rows.push_row(row);
    prepared.push_back({uid, clean.record.day,
                        clean.action == robustness::SanitizeAction::kRepaired,
                        clean.record.dead});
    if (observer != nullptr) clean_records.push_back(clean.record);
  }
  if (prepared.empty()) return;

  std::vector<float> scores;
  if (model != nullptr) scores = model->predict_proba(rows);
  std::uint64_t alerts = 0;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const Prepared& p = prepared[i];
    DriveAssessment assessment;
    assessment.uid = p.uid;
    assessment.day = p.day;
    assessment.scored = model != nullptr;
    assessment.score = assessment.scored ? scores[i] : 0.0f;
    assessment.alert = assessment.scored && assessment.score >= config_.threshold;
    if (assessment.alert) ++alerts;
    assessment.dead = p.dead;
    assessment.health =
        shard.health.observe(p.uid, assessment.score, p.suspect, p.dead);
    if (config_.on_assessment) config_.on_assessment(assessment);
    if (observer != nullptr) assessments.push_back(assessment);
  }
  if (observer != nullptr) observer->on_batch(rows, clean_records, assessments);
  if (model != nullptr) {
    scored_.fetch_add(prepared.size(), std::memory_order_relaxed);
    scored_metric_->inc(prepared.size());
    alerts_.fetch_add(alerts, std::memory_order_relaxed);
    alerts_metric_->inc(alerts);
  }
}

void TelemetryDaemon::process_retires(Shard& shard,
                                      std::span<const std::uint64_t> uids) {
  if (uids.empty()) return;
  for (const std::uint64_t uid : uids) {
    shard.cursors.erase(uid);
    shard.sanitizer.forget(uid);
    shard.health.retire(uid);
  }
  if (config_.batch_observer != nullptr && !recovering_.load(std::memory_order_relaxed))
    config_.batch_observer->on_retired(uids);
}

void TelemetryDaemon::appender_main(Shard& shard) {
  std::vector<core::FleetObservation> batch;
  std::vector<std::uint64_t> retires;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    retires.clear();
    shard.ring.pop_into(batch, config_.max_batch);
    {
      std::scoped_lock lock(shard.retire_mutex);
      retires.swap(shard.pending_retires);
    }
    // Promotion strike reset, applied by the thread that owns the tracker
    // so HealthTracker needs no locking.
    apply_pending_strike_reset(shard);
    if (batch.empty() && retires.empty()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(config_.poll_interval);
      continue;
    }
    if (config_.appender_hook) config_.appender_hook(shard.index);
    wal_append(shard, batch, retires);
    process_records(shard, batch);
    process_retires(shard, retires);
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
}

void TelemetryDaemon::watchdog_main() {
  struct Seen {
    std::uint64_t beat = 0;
    std::chrono::steady_clock::time_point changed;
    bool flagged = false;
  };
  std::vector<Seen> seen(shards_.size());
  const auto start = std::chrono::steady_clock::now();
  for (auto& s : seen) s.changed = start;

  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(config_.watchdog_interval);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const std::size_t depth = shard.ring.size_approx();
      shard.depth_metric->set(static_cast<double>(depth));
      const std::uint64_t beat = shard.heartbeat.load(std::memory_order_relaxed);
      if (beat != seen[i].beat) {
        seen[i] = {beat, now, false};
        continue;
      }
      // One stall episode per freeze: flag once, clear when the beat moves.
      if (depth > 0 && !seen[i].flagged && now - seen[i].changed > config_.stall_timeout) {
        seen[i].flagged = true;
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
        stalls_metric_->inc();
      }
    }
  }
  for (auto& shard : shards_) shard->depth_metric->set(0.0);
}

DaemonStats TelemetryDaemon::stats() const {
  DaemonStats out;
  out.ingested = ingested_.load();
  out.shed = shed_.load();
  out.rejected = rejected_.load();
  out.scored = scored_.load();
  out.alerts = alerts_.load();
  out.quarantined = quarantined_.load();
  out.duplicates_dropped = duplicates_.load();
  out.segments_appended = segments_.load();
  out.wal_bytes = wal_bytes_.load();
  out.wal_errors = wal_errors_.load();
  out.watchdog_stalls = watchdog_stalls_.load();
  out.recovery = recovery_;
  out.degraded = current_model() == nullptr;
  out.wal_degraded = wal_degraded_.load();
  for (const auto& shard : shards_) {
    out.drives_tracked += shard->cursors.size();
    const auto counts = shard->health.counts();
    for (std::size_t s = 0; s < kNumHealthStates; ++s)
      out.health_counts[s] += counts[s];
  }
  return out;
}

std::uint64_t TelemetryDaemon::state_digest() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [uid, cursor] : shard->cursors)
      total += cursor_digest(uid, cursor);
    total += shard->health.digest();
  }
  return total;
}

}  // namespace ssdfail::daemon
