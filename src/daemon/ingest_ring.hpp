#pragma once

// Bounded lock-free MPSC ingest ring with an explicit backpressure policy.
//
// Producers (collector threads, one per fleet slice) push FleetObservations
// into the shard's ring; the shard's single appender thread drains it in
// batches.  The cell/sequence design is Vyukov's bounded MPMC queue — each
// cell carries an atomic sequence number that encodes whether it is free
// for the ticket that wants it — which gives us what the daemon actually
// needs: multi-producer safety, per-producer FIFO (a drive's records are
// pushed by exactly one producer, so sanitizer day-order is preserved),
// and NO unbounded memory, ever.
//
// Backpressure is a policy, not an accident:
//
//   kBlock — a full ring parks the producer in a bounded sleep loop until
//            space frees or `block_timeout` expires, THEN sheds.  The slow
//            consumer stalls producers instead of ballooning memory.
//   kShed  — a full ring drops the record immediately.
//
// Every shed is counted by the caller (daemon_records_shed_total); nothing
// is silently lost.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/fleet_observation.hpp"

namespace ssdfail::daemon {

enum class Backpressure : std::uint8_t { kBlock = 0, kShed };

enum class PushResult : std::uint8_t {
  kAccepted = 0,
  kShed,      ///< ring full past the policy's patience; record dropped
  kRejected,  ///< daemon stopping; no new records accepted
};

class IngestRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit IngestRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_.size(); }

  /// Lock-free single attempt; false when the ring is full.
  bool try_push(const core::FleetObservation& obs) {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(ticket);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1, std::memory_order_relaxed))
        {
          cell.value = obs;
          cell.seq.store(ticket + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: the cell still holds an unconsumed ticket
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Push under `policy`: kShed gives up immediately on a full ring,
  /// kBlock parks in a sleep loop until space frees or `timeout` passes.
  PushResult push(const core::FleetObservation& obs, Backpressure policy,
                  std::chrono::milliseconds timeout) {
    if (try_push(obs)) return PushResult::kAccepted;
    if (policy == Backpressure::kShed) return PushResult::kShed;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    int spins = 0;
    do {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      if (try_push(obs)) return PushResult::kAccepted;
    } while (std::chrono::steady_clock::now() < deadline);
    return PushResult::kShed;
  }

  /// Single-consumer drain of up to `max` records appended to `out`.
  /// Returns the number drained.
  std::size_t pop_into(std::vector<core::FleetObservation>& out, std::size_t max) {
    std::size_t drained = 0;
    while (drained < max) {
      const std::size_t ticket = head_.load(std::memory_order_relaxed);
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(ticket + 1) < 0)
        break;  // empty
      out.push_back(cell.value);
      cell.seq.store(ticket + mask_ + 1, std::memory_order_release);
      head_.store(ticket + 1, std::memory_order_relaxed);
      ++drained;
    }
    return drained;
  }

  /// Racy size estimate (metrics / watchdog only).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    core::FleetObservation value;
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer tickets
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor (single owner)
};

}  // namespace ssdfail::daemon
