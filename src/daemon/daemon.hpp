#pragma once

// TelemetryDaemon: the long-running ingest service tying the PR together.
//
//   producers --> per-shard IngestRing (bounded, backpressure policy)
//                     |
//               appender thread (one per shard)
//                     |--> WalWriter.append(raw batch)      [durability first]
//                     |--> RecordSanitizer                   [repair/drop/DLQ]
//                     |--> DriveFeatureCursor + Classifier   [score]
//                     |--> HealthTracker                     [escalate/page]
//
// The WAL records RAW observations before any processing, so startup
// recovery replays them through the exact same sanitize -> advance ->
// score -> health path and lands on bit-identical per-drive state (the
// state_digest() invariant; pinned under real SIGKILL by
// tests/daemon/test_crash_recovery.cpp).
//
// Failure posture — the daemon degrades, it does not die:
//   * scorer unavailable (null model)  -> ingest + WAL + health continue,
//     scores read 0, `daemon_degraded` gauge is 1 until set_model().
//   * store unavailable (WAL open or append fails) -> scoring continues
//     without durability, `daemon_wal_degraded` is 1 and every failure
//     counts in `daemon_wal_errors_total`.
//   * corrupt WAL on startup -> replay truncates the torn tail, never
//     throws (see daemon/wal.hpp's recovery contract).
//
// A watchdog thread samples each appender's heartbeat and counts shards
// that sit on a non-empty ring without making progress
// (`daemon_watchdog_stalls_total`); stop() drains every ring, fsyncs, and
// joins all threads (the CLI wires SIGTERM/SIGINT to it).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/features.hpp"
#include "daemon/health.hpp"
#include "daemon/ingest_ring.hpp"
#include "daemon/wal.hpp"
#include "ml/classifier.hpp"
#include "ml/matrix.hpp"
#include "robustness/record_sanitizer.hpp"

namespace ssdfail::daemon {

/// One scored (or degraded-mode) observation, delivered to the optional
/// on_assessment sink in processing order per shard.
struct DriveAssessment {
  std::uint64_t uid = 0;
  std::int32_t day = 0;
  float score = 0.0f;
  bool scored = false;  ///< false when running without a model
  bool alert = false;
  bool dead = false;    ///< the (sanitized) record carried the dead flag
  HealthState health = HealthState::kHealthy;
};

/// Tap for the online-learning layer (src/online): everything the drift
/// detector and model arena need, delivered once per processed batch from
/// the appender thread that owns the shard.  `features` holds one row per
/// surviving record; `records[i]` is the SANITIZED record that produced
/// `features.row(i)` and `assessments[i]` (quarantined / duplicate records
/// never reach the tap).  Implementations must be thread-safe when
/// shards > 1 and cheap — this runs on the ingest hot path.  The tap is
/// NOT invoked during startup WAL replay: recovery rebuilds daemon state,
/// not downstream accumulators.
class BatchObserver {
 public:
  virtual ~BatchObserver() = default;
  virtual void on_batch(const ml::Matrix& features,
                        std::span<const trace::DailyRecord> records,
                        std::span<const DriveAssessment> assessments) = 0;
  /// Drives explicitly retired through the pipeline (censoring signal).
  virtual void on_retired(std::span<const std::uint64_t> uids) { (void)uids; }
};

struct DaemonConfig {
  std::size_t shards = 4;
  std::size_t ring_capacity = 1024;  ///< per shard, rounded up to a power of two
  Backpressure backpressure = Backpressure::kBlock;
  std::chrono::milliseconds block_timeout{100};  ///< kBlock patience before shedding
  std::size_t max_batch = 256;       ///< records drained per appender iteration

  /// Directory for per-shard WAL files; empty runs WITHOUT a WAL
  /// (`daemon_wal_degraded` is 1 from the start).
  std::string wal_dir;
  FsyncPolicy fsync = FsyncPolicy::kEverySegment;

  /// Rotate a shard's active WAL once it exceeds this many bytes: the file
  /// is sealed (fsync + rename to wal-<shard>-<seq>.sealed.swal) and a
  /// fresh active log continues the seq chain.  Sealed files are what the
  /// WAL->v3 compactor (daemon/compactor.hpp) consumes; recovery replays
  /// sealed files before the active one, so rotation never changes replay
  /// semantics.  0 (default) disables rotation.
  std::uint64_t wal_rotate_bytes = 0;

  double threshold = 0.5;  ///< alert when score >= threshold
  HealthConfig health;

  /// Registry for all daemon metric families; null uses the global one.
  obs::MetricsRegistry* registry = nullptr;
  std::size_t dead_letter_capacity = 64;  ///< per-shard sanitizer DLQ bound

  std::chrono::milliseconds poll_interval{1};      ///< appender idle sleep
  std::chrono::milliseconds watchdog_interval{20};
  std::chrono::milliseconds stall_timeout{500};    ///< no progress + backlog = stall

  /// Observability sink for every processed record (tests, CLI --verbose).
  /// Called from appender threads; must be thread-safe if shards > 1.
  std::function<void(const DriveAssessment&)> on_assessment;
  /// Test hook, invoked by an appender at the top of each busy iteration
  /// (the watchdog test injects a sleep here to fake a stalled shard).
  std::function<void(std::uint32_t shard)> appender_hook;
  /// Online-learning tap (non-owning; must outlive the daemon).  See
  /// BatchObserver.  Null disables the tap at zero cost.
  BatchObserver* batch_observer = nullptr;
};

/// Point-in-time daemon statistics (internal atomics, not the registry, so
/// a shared/global registry never bleeds other instances into these).
struct DaemonStats {
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;  ///< pushes after stop() began
  std::uint64_t scored = 0;
  std::uint64_t alerts = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t segments_appended = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_errors = 0;
  std::uint64_t watchdog_stalls = 0;
  std::size_t drives_tracked = 0;
  std::array<std::uint64_t, kNumHealthStates> health_counts{};
  WalReplayStats recovery;  ///< merged across shards (start() replay)
  bool degraded = false;      ///< serving without a model
  bool wal_degraded = false;  ///< serving without durability
};

class TelemetryDaemon {
 public:
  /// `model` may be null: the daemon starts degraded (see header comment).
  TelemetryDaemon(std::shared_ptr<const ml::Classifier> model, DaemonConfig config);
  ~TelemetryDaemon();
  TelemetryDaemon(const TelemetryDaemon&) = delete;
  TelemetryDaemon& operator=(const TelemetryDaemon&) = delete;

  /// Replay per-shard WALs (rebuilding all per-drive state), open the
  /// writers, and launch appender + watchdog threads.  Idempotent once
  /// running.  Never throws on corrupt WAL content.
  void start();

  /// Graceful drain: stop accepting, drain every ring through the full
  /// pipeline, fsync WALs, join all threads.  Safe to call twice.
  void stop();

  /// Producer entry point (any thread).  Applies the configured
  /// backpressure policy; returns kRejected once stop() has begun.
  PushResult push(const core::FleetObservation& obs);

  /// Route a drive swap through the pipeline (WAL-logged as a kRetires
  /// segment, so recovery replays it at the same point in the stream).
  void retire(trace::DriveModel drive_model, std::uint32_t drive_index);

  /// Install (or restore) the scoring model; a non-null model clears
  /// degraded mode for subsequent batches.  Installing a model also resets
  /// every drive's consecutive-strike counters (HealthTracker::
  /// reset_strikes): strikes earned under the previous model's score scale
  /// must not carry into post-promotion escalation.  The reset is applied
  /// by each shard's own appender thread at its next iteration (inline
  /// when the daemon is quiesced), so HealthTracker stays appender-owned.
  void set_model(std::shared_ptr<const ml::Classifier> model);

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] DaemonStats stats() const;

  /// Order-independent digest over every shard's per-drive state (feature
  /// cursors + health machines).  Two daemons that processed equivalent
  /// streams — e.g. one uninterrupted, one SIGKILLed and recovered — must
  /// agree.  Call while quiesced (before start() or after stop()).
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct Shard {
    explicit Shard(const DaemonConfig& config, obs::MetricsRegistry& registry,
                   std::uint32_t index);

    std::uint32_t index = 0;
    IngestRing ring;
    std::unique_ptr<WalWriter> wal;
    robustness::RecordSanitizer sanitizer;
    std::unordered_map<std::uint64_t, core::DriveFeatureCursor> cursors;
    HealthTracker health;

    std::mutex retire_mutex;
    std::vector<std::uint64_t> pending_retires;

    std::thread appender;
    std::atomic<std::uint64_t> heartbeat{0};  ///< bumps once per busy iteration
    /// Set by set_model(), consumed by the owning appender (or inline when
    /// quiesced): clear strike streaks before processing the next batch.
    std::atomic<bool> strike_reset_pending{false};

    obs::Counter* ingested_metric = nullptr;  ///< daemon_records_ingested_total{shard=}
    obs::Gauge* depth_metric = nullptr;       ///< daemon_ring_depth{shard=}
  };

  [[nodiscard]] std::size_t shard_index(std::uint64_t uid) const noexcept;
  [[nodiscard]] std::shared_ptr<const ml::Classifier> current_model() const;

  void appender_main(Shard& shard);
  void watchdog_main();
  void recover_shard(Shard& shard);
  void maybe_rotate_wal(Shard& shard);
  void wal_append(Shard& shard, std::span<const core::FleetObservation> batch,
                  std::span<const std::uint64_t> retires);
  void process_records(Shard& shard, std::span<const core::FleetObservation> batch);
  void process_retires(Shard& shard, std::span<const std::uint64_t> uids);
  void mark_wal_degraded(Shard& shard);
  void apply_pending_strike_reset(Shard& shard);

  DaemonConfig config_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const ml::Classifier> model_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// True while start() replays WALs: the batch observer stays silent
  /// (recovery rebuilds daemon state, not downstream accumulators).
  std::atomic<bool> recovering_{false};
  std::thread watchdog_;

  // Internal stat atomics (mirrored into registry counters as they move).
  std::atomic<std::uint64_t> ingested_{0}, shed_{0}, rejected_{0};
  std::atomic<std::uint64_t> scored_{0}, alerts_{0};
  std::atomic<std::uint64_t> quarantined_{0}, duplicates_{0};
  std::atomic<std::uint64_t> segments_{0}, wal_bytes_{0}, wal_errors_{0};
  std::atomic<std::uint64_t> watchdog_stalls_{0};
  std::atomic<bool> wal_degraded_{false};
  WalReplayStats recovery_;  ///< written by start() before threads exist

  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* scored_metric_ = nullptr;
  obs::Counter* alerts_metric_ = nullptr;
  obs::Counter* segments_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* wal_errors_metric_ = nullptr;
  obs::Counter* stalls_metric_ = nullptr;
  obs::Counter* strike_resets_metric_ = nullptr;
  obs::Counter* recovered_segments_metric_ = nullptr;
  obs::Counter* recovered_records_metric_ = nullptr;
  obs::Gauge* degraded_metric_ = nullptr;
  obs::Gauge* wal_degraded_metric_ = nullptr;
};

}  // namespace ssdfail::daemon
