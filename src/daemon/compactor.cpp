#include "daemon/compactor.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "daemon/wal.hpp"
#include "obs/metrics.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::daemon {
namespace {

obs::Counter& compactions_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "daemon_compactions_total", {}, "WAL->v3 compaction runs that wrote a shard");
  return c;
}

obs::Counter& compacted_records_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "daemon_compacted_records_total", {}, "observations folded into v3 shards");
  return c;
}

/// First shard-file name not already claimed by the manifest or the
/// directory (a crashed prior run may have left an orphan shard file that
/// never made it into the manifest; never overwrite it — it may be mid-copy
/// elsewhere — just step past).
std::string next_shard_name(const std::string& store_dir,
                            const store::ShardManifest& manifest) {
  for (std::size_t index = manifest.shards.size();; ++index) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%06zu.ssdf2", index);
    const bool in_manifest =
        std::any_of(manifest.shards.begin(), manifest.shards.end(),
                    [&](const store::ShardInfo& s) { return s.file == name; });
    if (!in_manifest &&
        !std::filesystem::exists(std::filesystem::path(store_dir) / name))
      return name;
  }
}

}  // namespace

CompactionResult compact_sealed_wals(const std::string& wal_dir,
                                     const std::string& store_dir,
                                     const CompactorOptions& options) {
  CompactionResult result;
  const std::vector<std::string> sealed = list_sealed_wals(wal_dir);
  if (sealed.empty()) return result;

  // Replay every sealed file into per-drive histories.  std::map keys the
  // output by uid, which makes the shard's drive order deterministic no
  // matter how the daemon sharded the stream.
  std::map<std::uint64_t, trace::DriveHistory> drives;
  const auto fold = [&](const WalSegment& segment) {
    if (segment.type == SegmentType::kRecords) {
      for (const core::FleetObservation& obs : segment.records) {
        trace::DriveHistory& drive = drives[obs.uid()];
        if (drive.records.empty() && drive.swaps.empty()) {
          drive.model = obs.drive_model;
          drive.drive_index = obs.drive_index;
          drive.deploy_day = obs.deploy_day;
        }
        // The store requires strictly day-ordered records; the WAL holds
        // the raw pre-sanitizer stream, so enforce the invariant here the
        // same way the serving path's sanitizer does: drop non-advancers.
        if (!drive.records.empty() && obs.record.day <= drive.records.back().day) {
          ++result.out_of_order_dropped;
          continue;
        }
        drive.records.push_back(obs.record);
        ++result.records;
      }
    } else {
      for (const std::uint64_t uid : segment.retired_uids) {
        const auto it = drives.find(uid);
        if (it == drives.end()) continue;  // retire before any record: no day to pin
        trace::DriveHistory& drive = it->second;
        if (drive.records.empty()) continue;
        const std::int32_t day = drive.records.back().day;
        if (!drive.swaps.empty() && day <= drive.swaps.back().day) continue;
        drive.swaps.push_back(trace::SwapEvent{day});
        ++result.retires;
      }
    }
  };
  for (const std::string& path : sealed) {
    replay_wal(path, fold);
    ++result.wal_files;
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    if (!ec) result.wal_bytes_in += bytes;
  }

  if (drives.empty()) {
    // Sealed files held nothing durable (all torn tails).  They are still
    // consumed — their content is unrecoverable by any later run too.
    if (!options.keep_wal)
      for (const std::string& path : sealed) std::filesystem::remove(path);
    return result;
  }

  trace::FleetTrace fleet;
  fleet.drives.reserve(drives.size());
  for (auto& [uid, drive] : drives) fleet.drives.push_back(std::move(drive));
  result.drives = fleet.drives.size();

  // Shard file first, manifest second, deletion last: every crash point
  // leaves either the old store intact or the new shard fully published.
  std::filesystem::create_directories(store_dir);
  store::ShardManifest manifest;
  if (std::filesystem::exists(std::filesystem::path(store_dir) / store::kManifestName))
    manifest = store::read_manifest(store_dir);

  store::ShardInfo info;
  info.file = next_shard_name(store_dir, manifest);
  const std::filesystem::path shard_path =
      std::filesystem::path(store_dir) / info.file;
  store::write_columnar_file(shard_path.string(), fleet, options.store);
  info.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(shard_path));
  info.n_drives = fleet.drives.size();
  info.n_records = fleet.total_records();
  info.n_swaps = fleet.total_swaps();
  result.shard_bytes_out = info.bytes;
  result.shard_file = info.file;
  manifest.shards.push_back(std::move(info));
  store::write_manifest(store_dir, manifest);
  result.shards_written = 1;

  if (!options.keep_wal)
    for (const std::string& path : sealed) std::filesystem::remove(path);

  compactions_counter().inc();
  compacted_records_counter().inc(result.records);
  return result;
}

}  // namespace ssdfail::daemon
