#pragma once

// WAL -> SSDF2 v3 compactor: the background path that turns the daemon's
// sealed `.swal` segments into scan-optimized columnar shards, composing
// the streaming appender (daemon/wal.hpp rotation) with the chunk-parallel
// store scans (store/columnar.hpp, store/sharded.hpp).
//
//   daemon appends -> active wal-<shard>.swal
//                       | rotation at wal_rotate_bytes
//                  wal-<shard>-<seq>.sealed.swal   (immutable)
//                       | compact_sealed_wals (this header)
//                  store_dir/shard-<n>.ssdf2 + manifest.ssdm
//
// Each run replays every sealed file (active logs are never touched — the
// daemon owns those), reconstructs per-drive histories, writes ONE new v3
// shard, appends it to the store directory's manifest atomically, and only
// then deletes the consumed sealed files.  A crash between shard write and
// deletion therefore re-compacts (duplicate drive histories in a later
// shard) rather than losing data; a crash before the manifest rename
// leaves the store exactly as it was.
//
// Ordering contract: drives are emitted sorted by uid, each drive's
// records in replay (seq) order with non-advancing days dropped (the
// store requires day-ordered histories; the daemon's sanitizer enforces
// the same invariant on the serving path).  A kRetires entry becomes a
// SwapEvent on the drive's last replayed day.

#include <cstdint>
#include <string>

#include "store/sharded.hpp"

namespace ssdfail::daemon {

struct CompactorOptions {
  /// Per-shard store write options; defaults to v3 (that is the point).
  store::ColumnarWriteOptions store;
  /// Keep consumed sealed files instead of deleting them (debugging).
  bool keep_wal = false;

  CompactorOptions() { store.version = store::kColumnarVersionV3; }
};

struct CompactionResult {
  std::size_t wal_files = 0;             ///< sealed files consumed
  std::uint64_t wal_bytes_in = 0;        ///< their total size
  std::uint64_t records = 0;             ///< observations folded in
  std::uint64_t retires = 0;             ///< swap events folded in
  std::uint64_t out_of_order_dropped = 0;///< non-advancing days discarded
  std::size_t drives = 0;                ///< distinct drives in the new shard
  std::size_t shards_written = 0;        ///< 0 or 1 (0: nothing to compact)
  std::uint64_t shard_bytes_out = 0;     ///< bytes of the new v3 shard
  std::string shard_file;                ///< its name, when written
};

/// Compact every sealed WAL under `wal_dir` into one new v3 shard of the
/// sharded store at `store_dir` (created, with an empty manifest, if
/// absent).  Returns what happened; throws std::runtime_error on I/O
/// failure writing the shard or manifest.  Corrupt sealed content is
/// handled by the WAL recovery contract (torn tails truncate, never
/// throw).
CompactionResult compact_sealed_wals(const std::string& wal_dir,
                                     const std::string& store_dir,
                                     const CompactorOptions& options = {});

}  // namespace ssdfail::daemon
