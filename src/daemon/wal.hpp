#pragma once

// Crash-safe write-ahead log for the streaming telemetry daemon.
//
// Each ingest shard appends drained FleetObservation batches to its own
// WAL file BEFORE processing them, so a crash at any point loses at most
// the final unsynced segment and startup replay rebuilds per-drive state
// bit-identically to an uninterrupted run (tests/daemon/
// test_crash_recovery.cpp pins this under real SIGKILL).
//
// Framing reuses the SSDF2 discipline (store/crc32, docs/DATA_FORMAT.md):
// little-endian fields, a per-segment CRC32 over everything after the
// frame marker, and a required-zero check on reserved space.  The file is
// a fixed header followed by appended segments:
//
//   file header   magic "SWAL" | version u32 | shard u32 | reserved u32(=0)
//   segment       marker u32 | seq u64 | type u32 | count u32 | len u32 |
//                 crc u32 | payload[len]
//
// `seq` strictly increases within a file; replay skips any segment whose
// seq does not advance (duplicate delivery — a producer retry after a
// crash between write and acknowledge).  `type` is kRecords (payload =
// packed observations) or kRetires (payload = packed drive uids).
//
// Recovery contract (the chaos suite's invariant): open_for_replay never
// throws on a torn, truncated, zeroed, or bit-flipped file.  Replay stops
// at the first frame that fails any structural or CRC check, reports how
// many bytes were discarded, and the writer truncates the file back to
// the last durable boundary before appending again.  Only I/O errors
// (open/write/fsync failures) surface as exceptions, and the daemon
// catches those to run WAL-degraded rather than die.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fleet_observation.hpp"

namespace ssdfail::daemon {

inline constexpr std::uint32_t kWalMagic = 0x4C415753;    // "SWAL"
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::uint32_t kSegmentMarker = 0x5347E57A;

/// Serialized size of one FleetObservation in a records payload: the
/// original 76 bytes plus one u32 per class-specific extension counter.
inline constexpr std::size_t kWalRecordSize =
    76 + 4 * trace::kNumExtCounterFields;
inline constexpr std::size_t kWalFileHeaderSize = 16;
inline constexpr std::size_t kWalSegmentHeaderSize = 28;
/// Upper bound accepted for a segment payload; anything larger is treated
/// as frame garbage (stops a bit-flipped length from driving a huge read).
inline constexpr std::uint32_t kWalMaxPayload = 1u << 26;

enum class SegmentType : std::uint32_t {
  kRecords = 0,  ///< payload: count packed FleetObservations
  kRetires = 1,  ///< payload: count little-endian u64 drive uids
};

/// When the writer fsyncs: kEverySegment is the durability the crash tests
/// assume (lose at most the in-flight segment); kNever leaves flushing to
/// the kernel (benchmarks, tests where durability is irrelevant).
enum class FsyncPolicy : std::uint8_t { kEverySegment = 0, kNever };

/// One replayed segment, handed to the recovery callback in log order.
struct WalSegment {
  std::uint64_t seq = 0;
  SegmentType type = SegmentType::kRecords;
  std::vector<core::FleetObservation> records;  ///< kRecords payload
  std::vector<std::uint64_t> retired_uids;      ///< kRetires payload
};

struct WalReplayStats {
  std::uint64_t segments_replayed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t retires_replayed = 0;
  std::uint64_t duplicates_skipped = 0;  ///< whole segments with stale seq
  std::uint64_t truncated_bytes = 0;     ///< torn/corrupt tail discarded
  std::uint64_t last_seq = 0;            ///< highest seq accepted
  std::uint64_t durable_bytes = 0;       ///< valid prefix length (with header)
  bool header_valid = false;             ///< false: empty/alien file, nothing replayed

  void merge(const WalReplayStats& other) noexcept;
};

/// Serialize observations/uids exactly as a kRecords/kRetires payload
/// (exposed for the fuzz suite to build hostile images byte-by-byte).
void append_record_payload(std::vector<char>& out, const core::FleetObservation& obs);
[[nodiscard]] core::FleetObservation parse_record_payload(const char* bytes);

/// Append-only WAL writer for one shard.  NOT thread-safe: exactly one
/// appender thread owns a writer (the daemon's shard threads).
class WalWriter {
 public:
  /// Open (creating or resuming) the shard WAL at `path`.  A pre-existing
  /// file is scanned like replay does and truncated back to its durable
  /// prefix, so appends always start at a clean segment boundary; the next
  /// seq continues after the highest durable one.  `first_seq` raises the
  /// starting seq further (rotation: the fresh active file continues the
  /// sealed file's chain so cross-file replay stays strictly ordered).
  /// Throws std::runtime_error on I/O failure.
  WalWriter(std::string path, std::uint32_t shard, FsyncPolicy fsync,
            std::uint64_t first_seq = 1);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one records segment; returns its seq.  Throws on I/O failure.
  std::uint64_t append(std::span<const core::FleetObservation> batch);
  /// Append one retires segment; returns its seq.  Throws on I/O failure.
  std::uint64_t append_retires(std::span<const std::uint64_t> uids);

  /// fsync regardless of policy (graceful-drain epilogue).
  void sync();

  /// Seal this log: fsync, close, and atomically rename the file to
  /// `sealed_path`.  The writer is finished afterwards (any further append
  /// throws); the caller opens a fresh WalWriter at the active path with
  /// first_seq = next_seq() to continue the chain.  Throws on I/O failure,
  /// leaving the active file in place (the log is never lost mid-seal).
  void seal(const std::string& sealed_path);

  [[nodiscard]] std::uint64_t segments_written() const noexcept { return segments_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::uint64_t append_segment(SegmentType type, std::uint32_t count,
                               std::span<const char> payload);

  std::string path_;
  int fd_ = -1;
  FsyncPolicy fsync_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t segments_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Replay `path`, invoking `on_segment` for every accepted segment in log
/// order.  Never throws on corrupt CONTENT (see recovery contract above);
/// a missing file is simply zero segments.  Throws std::runtime_error only
/// on read I/O errors.
WalReplayStats replay_wal(const std::string& path,
                          const std::function<void(const WalSegment&)>& on_segment);

/// Replay an in-memory WAL image (the fuzz suite's entry point).
WalReplayStats replay_wal_image(std::span<const char> image,
                                const std::function<void(const WalSegment&)>& on_segment);

/// The canonical WAL filename for a shard inside `dir`.
[[nodiscard]] std::string wal_path(const std::string& dir, std::uint32_t shard);

/// Filename a rotation seals a shard's log under: embeds the last seq the
/// file holds, zero-padded so lexicographic order IS replay order.
[[nodiscard]] std::string sealed_wal_path(const std::string& dir, std::uint32_t shard,
                                          std::uint64_t last_seq);

/// Every sealed segment file for `shard` under `dir`, in replay (seq)
/// order.  Pass std::nullopt to list every shard's sealed files (the
/// compactor's input); order is then per-shard seq order, shards
/// interleaved lexicographically.
[[nodiscard]] std::vector<std::string> list_sealed_wals(
    const std::string& dir, std::optional<std::uint32_t> shard = std::nullopt);

}  // namespace ssdfail::daemon
