#pragma once

// Per-drive health state machine for the streaming daemon.
//
// The paper's operational loop is exactly this: watch each drive's
// telemetry, raise it through escalating attention tiers as the model's
// failure probability and the symptom stream worsen, and record the swap
// when the operator pulls it.  States:
//
//   kHealthy --> kRamping --> kAlert --> kSwapped (terminal)
//        ^___________|            |
//        ^________________________|   (cool-off de-escalates one tier)
//
// Escalation demands `ramp_days` / `alert_days` CONSECUTIVE days at or
// above the matching score threshold (a sanitizer violation counts as a
// ramp-tier strike — a drive whose telemetry needs repair is not healthy),
// so a single noisy score cannot page anyone.  De-escalation demands
// `cooloff_days` consecutive quiet days, so a flapping drive stays at its
// tier.  A dead record or an explicit retire() jumps straight to kSwapped.
//
// Everything is driven by observation days, scores, and verdicts — never
// the wall clock — so replaying the WAL reproduces the exact same state
// trajectory (the recovery bit-identity tests rely on this).
//
// NOT thread-safe: the daemon owns one tracker per shard, touched only by
// that shard's appender thread.  The registry mirrors (gauges/counters)
// are themselves atomic, so scrapes see consistent totals across shards.

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace ssdfail::daemon {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kRamping,  ///< sustained elevated risk; watch closely
  kAlert,    ///< sustained high risk; migrate data / schedule swap
  kSwapped,  ///< drive retired or reported dead (terminal)
};

inline constexpr std::size_t kNumHealthStates = 4;

[[nodiscard]] std::string_view health_state_name(HealthState state) noexcept;

struct HealthConfig {
  double ramp_threshold = 0.5;   ///< score at/above which a day is a ramp strike
  double alert_threshold = 0.9;  ///< score at/above which a day is an alert strike
  std::uint32_t ramp_days = 3;   ///< consecutive ramp strikes to enter kRamping
  std::uint32_t alert_days = 2;  ///< consecutive alert strikes to enter kAlert
  std::uint32_t cooloff_days = 7;  ///< consecutive quiet days to step down a tier
};

class HealthTracker {
 public:
  /// `registry` may be null (no metric mirroring — recovery replay uses
  /// this so counters reflect live traffic only).
  explicit HealthTracker(HealthConfig config, obs::MetricsRegistry* registry);

  /// Fold one scored observation for `uid` into its state machine.
  /// `suspect` marks a sanitizer verdict other than clean; `dead` is the
  /// record's dead flag.  Returns the state after the transition (if any).
  HealthState observe(std::uint64_t uid, double score, bool suspect, bool dead);

  /// Operator swapped the drive out: terminal state, further observations
  /// for the uid are ignored.
  void retire(std::uint64_t uid);

  /// Clear every drive's consecutive-strike counters (ramp/alert/quiet
  /// streaks) while keeping its state.  Called when the serving model is
  /// promoted: strikes accumulated under the old champion's score scale
  /// must not carry over into post-promotion escalation — the new model
  /// has to re-earn each escalation with its own consecutive days.  States
  /// persist (an alerted drive stays alerted; it de-escalates only through
  /// the usual cool-off, now counted from zero).  Returns the number of
  /// drives whose streaks were cleared (non-terminal drives with any
  /// non-zero streak).
  std::size_t reset_strikes();

  [[nodiscard]] HealthState state(std::uint64_t uid) const noexcept;
  /// Number of tracked drives currently in each state.
  [[nodiscard]] std::array<std::uint64_t, kNumHealthStates> counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::size_t tracked_drives() const noexcept { return drives_.size(); }

  /// Order-independent digest of (uid, state, streaks) — the recovery
  /// tests fold this into the daemon's state digest.
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  struct DriveHealth {
    HealthState state = HealthState::kHealthy;
    std::uint32_t ramp_streak = 0;
    std::uint32_t alert_streak = 0;
    std::uint32_t quiet_streak = 0;
  };

  void transition(DriveHealth& drive, HealthState to);

  HealthConfig config_;
  std::unordered_map<std::uint64_t, DriveHealth> drives_;
  std::array<std::uint64_t, kNumHealthStates> counts_{};
  /// Gauge per state (daemon_drive_health{state=...}) and counter per
  /// transition edge, interned lazily; null when metrics are off.
  obs::MetricsRegistry* registry_ = nullptr;
  std::array<obs::Gauge*, kNumHealthStates> state_gauges_{};
  std::array<std::array<obs::Counter*, kNumHealthStates>, kNumHealthStates>
      transition_counters_{};
};

}  // namespace ssdfail::daemon
