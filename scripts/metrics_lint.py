#!/usr/bin/env python3
"""Lint Prometheus text-format (0.0.4) output against the repo's metric
naming conventions (docs/OBSERVABILITY.md).

Reads the exposition from a file argument or stdin; CI pipes
`ssdfail_cli metrics` straight in.  Checks:

  - every sample belongs to a family declared by `# HELP` + `# TYPE`
  - metric and label names match [a-zA-Z_][a-zA-Z0-9_]*
  - counters end in `_total`; histograms carry a unit suffix
    (`_us`, `_bytes`, `_seconds`)
  - histogram `_bucket` series are cumulative (monotone in `le`), end at
    `le="+Inf"`, and the +Inf bucket equals `_count`
  - every histogram exposes `_sum` and `_count`
  - no duplicate (name, labels) sample
  - sample values parse as numbers (`NaN`/`+Inf`/`-Inf` allowed)

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
HISTOGRAM_UNITS = ("_us", "_bytes", "_seconds")


def parse_value(raw: str) -> float:
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def lint(lines: list[str]) -> list[str]:
    errors: list[str] = []
    families: dict[str, dict[str, str]] = {}  # name -> {"type": ..., "help": ...}
    seen_samples: set[tuple[str, str]] = set()
    # histogram family -> label-key (minus le) -> {"buckets": [(le, v)], ...}
    histograms: dict[str, dict[str, dict]] = {}

    def family_of(sample_name: str) -> str | None:
        if sample_name in families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and families.get(base, {}).get("type") == "histogram":
                return base
        return None

    for lineno, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                errors.append(f"line {lineno}: HELP without text: {line!r}")
                continue
            families.setdefault(parts[2], {})["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: bad TYPE line: {line!r}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: invalid family name {name!r}")
            fam = families.setdefault(name, {})
            if "type" in fam:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            fam["type"] = parts[3]
            if "help" not in fam:
                errors.append(f"line {lineno}: TYPE before HELP for {name}")
            if parts[3] == "counter" and not name.endswith("_total"):
                errors.append(f"line {lineno}: counter {name} must end in _total")
            if parts[3] == "histogram" and not name.endswith(HISTOGRAM_UNITS):
                errors.append(
                    f"line {lineno}: histogram {name} needs a unit suffix "
                    f"({'|'.join(HISTOGRAM_UNITS)})"
                )
            continue
        if line.startswith("#"):
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, raw_labels, raw_value = m.group("name", "labels", "value")
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {raw_value!r} for {name}")
            continue

        labels: list[tuple[str, str]] = []
        if raw_labels:
            spans = list(LABEL_RE.finditer(raw_labels))
            reconstructed = ",".join(mm.group(0) for mm in spans)
            if reconstructed != raw_labels:
                errors.append(f"line {lineno}: malformed label block {{{raw_labels}}}")
            labels = [(mm.group(1), mm.group(2)) for mm in spans]
            for key, _ in labels:
                if not NAME_RE.match(key):
                    errors.append(f"line {lineno}: invalid label name {key!r}")

        base = family_of(name)
        if base is None:
            errors.append(f"line {lineno}: sample {name} has no HELP/TYPE declaration")
            continue
        ftype = families[base].get("type")

        sample_key = (name, ",".join(f'{k}="{v}"' for k, v in labels))
        if sample_key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{{{sample_key[1]}}}")
        seen_samples.add(sample_key)

        if ftype == "histogram":
            child_key = ",".join(f'{k}="{v}"' for k, v in labels if k != "le")
            child = histograms.setdefault(base, {}).setdefault(
                child_key, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: {name} bucket without le label")
                else:
                    child["buckets"].append((lineno, le, value))
            elif name.endswith("_sum"):
                child["sum"] = value
            elif name.endswith("_count"):
                child["count"] = value
            else:
                errors.append(f"line {lineno}: bare sample {name} in histogram family")
        elif name != base:
            errors.append(f"line {lineno}: sample {name} does not match family {base}")

    for base, children in histograms.items():
        for child_key, child in children.items():
            where = f"{base}{{{child_key}}}" if child_key else base
            buckets = child["buckets"]
            if not buckets:
                errors.append(f"{where}: histogram with no _bucket series")
                continue
            if buckets[-1][1] != "+Inf":
                errors.append(f"{where}: last bucket le={buckets[-1][1]!r}, not +Inf")
            prev_le = -math.inf
            prev_v = -math.inf
            for lineno, le, v in buckets:
                le_num = parse_value(le)
                if not le_num > prev_le:
                    errors.append(f"line {lineno}: {where} le not increasing")
                if v < prev_v:
                    errors.append(f"line {lineno}: {where} buckets not cumulative")
                prev_le, prev_v = le_num, v
            if child["count"] is None:
                errors.append(f"{where}: missing _count")
            elif buckets[-1][2] != child["count"]:
                errors.append(
                    f"{where}: +Inf bucket {buckets[-1][2]} != _count {child['count']}"
                )
            if child["sum"] is None:
                errors.append(f"{where}: missing _sum")

    return errors


def main() -> int:
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [exposition.txt]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as f:
            lines = f.readlines()
    else:
        lines = sys.stdin.readlines()

    errors = lint(lines)
    for e in errors:
        print(e, file=sys.stderr)
    n_samples = sum(
        1 for l in lines if l.strip() and not l.startswith("#")
    )
    if errors:
        print(f"metrics lint: {len(errors)} violation(s) in {n_samples} samples",
              file=sys.stderr)
        return 1
    print(f"metrics lint OK: {n_samples} samples, clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
