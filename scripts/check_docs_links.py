#!/usr/bin/env python3
"""Check that every relative Markdown link in the repo resolves.

Scans all tracked *.md files (git ls-files when available, else a
filesystem walk that skips build trees) for inline links and enforces:

  - `[text](path)` with a relative path points at an existing file or
    directory, resolved against the linking file's directory
  - `[text](path#anchor)` additionally names a heading that exists in
    the target file (GitHub slug rules: lowercase, punctuation stripped,
    spaces to dashes)
  - `[text](#anchor)` names a heading in the same file

Absolute URLs (http/https/mailto) are ignored — this is a repo-internal
consistency gate, not a dead-link crawler.  Exit status 0 when clean;
1 with one `file:line: message` per violation otherwise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def md_files(root: str) -> list[str]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True, cwd=root,
        ).stdout
        files = [line for line in out.splitlines() if line.endswith(".md")]
        if files:
            return sorted(set(files))
    except (OSError, subprocess.CalledProcessError):
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "build")) and d != "third_party"]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(found)


def github_slug(heading: str) -> str:
    # Strip inline code/emphasis markers (underscores stay: GitHub keeps
    # them as word characters), then apply GitHub's anchor rule:
    # lowercase, drop everything but word chars / spaces / hyphens,
    # spaces become hyphens.
    text = re.sub(r"[`*]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(root: str, rel: str) -> list[str]:
    errors: list[str] = []
    path = os.path.join(root, rel)
    base = os.path.dirname(path)
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(EXTERNAL_PREFIXES):
                    continue
                dest, _, anchor = target.partition("#")
                if dest:
                    dest_path = os.path.normpath(os.path.join(base, dest))
                    if not os.path.exists(dest_path):
                        errors.append(f"{rel}:{lineno}: broken link "
                                      f"'{target}' ({dest} does not exist)")
                        continue
                else:
                    dest_path = path
                if anchor and dest_path.endswith(".md"):
                    if anchor not in heading_slugs(dest_path):
                        errors.append(f"{rel}:{lineno}: broken anchor "
                                      f"'{target}' (no heading #{anchor})")
    return errors


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = md_files(root)
    if not files:
        print("check_docs_links: no markdown files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    links = 0
    for rel in files:
        errs = check_file(root, rel)
        errors.extend(errs)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_docs_links: {len(errors)} broken link(s) "
              f"across {len(files)} files", file=sys.stderr)
        return 1
    print(f"check_docs_links: OK ({len(files)} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
