#!/usr/bin/env bash
# Fail if the git index contains build artifacts: CMake/CTest generated
# files or compiled (ELF) binaries.  Run from anywhere inside the repo;
# CI runs it on every push so the accident this cleans up cannot recur.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

fail=0

generated=$(git ls-files | grep -E \
  '(^|/)(CMakeCache\.txt$|CMakeFiles/|Testing/|Makefile$|cmake_install\.cmake$|CTestTestfile\.cmake$|DartConfiguration\.tcl$)' \
  || true)
if [[ -n "$generated" ]]; then
  echo "error: generated CMake/CTest files are tracked:" >&2
  echo "$generated" >&2
  fail=1
fi

binaries=""
while IFS= read -r -d '' f; do
  [[ -f "$f" ]] || continue
  if [[ "$(head -c4 "$f" 2>/dev/null | od -An -tx1 | tr -d ' \n')" == "7f454c46" ]]; then
    binaries+="$f"$'\n'
  fi
done < <(git ls-files -z)
if [[ -n "$binaries" ]]; then
  echo "error: compiled ELF binaries are tracked:" >&2
  printf '%s' "$binaries" >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "hint: git rm --cached <file> and extend .gitignore" >&2
  exit 1
fi
echo "ok: no generated files or binaries tracked"
