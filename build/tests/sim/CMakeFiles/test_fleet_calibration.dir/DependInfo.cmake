
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_fleet_calibration.cpp" "tests/sim/CMakeFiles/test_fleet_calibration.dir/test_fleet_calibration.cpp.o" "gcc" "tests/sim/CMakeFiles/test_fleet_calibration.dir/test_fleet_calibration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ssdfail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ssdfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ssdfail_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ssdfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ssdfail_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
